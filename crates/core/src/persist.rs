//! Binary persistence for the core structures: vector stores and frozen
//! graphs.
//!
//! Indexes at the paper's scale take hours to days to build; any usable
//! release must be able to save and reload them. The format is a simple
//! length-prefixed little-endian layout with a magic header and version
//! byte, built on the `bytes` crate:
//!
//! ```text
//! "GASS" | version:u8 | kind:u8 | payload...
//! ```
//!
//! Payloads:
//! * store — `dim:u64 | len:u64 | f32 data`
//! * flat graph — `slots:u64 | nodes:u64 | counts:u32[] | edges:u32[]`
//! * quantized store — `dim:u64 | len:u64 | mins:f32[dim] | deltas:f32[dim]
//!   | codes:u8[len*dim]` (rows packed, cache-line padding stripped; the
//!   aligned layout is rebuilt on load)
//! * permutation — `n:u64 | new_to_old:u32[n]` (the reorder placement
//!   order; the inverse table is rebuilt — and the bijection re-validated —
//!   on load)
//! * codec store — `codec:u8 | codec payload`, where the codec tag selects
//!   the body: SQ8/SQ4 reuse the quantized-store shape (`dim | len | mins |
//!   deltas | packed codes` with SQ4 rows `ceil(dim/2)` bytes), PQ is
//!   `dim:u64 | m:u64 | ncent:u64 | len:u64 | perm:u32[dim]
//!   | centroids:f32[m*16*(dim/m)] | codes:u8[len*ceil(m/2)]` (`perm` is
//!   the variance-balanced dimension deal, validated as a permutation on
//!   load). The legacy `KIND_QUANT` section remains readable and is
//!   exactly the SQ8 body.
//!
//! ## Mapped sections
//!
//! Two further kinds store their bulk payload **in the serving layout**
//! (padded rows from a 64-byte-aligned file offset) so a loaded file can
//! be memory-mapped and searched in place, cold rows faulting in on
//! demand — the beyond-RAM tiers' on-disk format (see [`crate::mmap`]):
//! * mapped store — `dim:u64 | len:u64 | zero pad to offset 64 | rows`,
//!   each row `aligned_stride(dim)` zero-padded `f32`s
//! * mapped codec — `codec:u8 | params (as the codec section) | zero pad
//!   to a 64-byte boundary | padded code rows` (the whole code area, tail
//!   padding included)
//!
//! [`open_store`]/[`open_codec`] sniff the kind byte and accept either
//! representation; when mapping is disabled or unavailable the mapped
//! kinds are parsed into ordinary heap structures instead. Byte equality
//! of the heap and mapped row layouts is what makes the mapped path
//! observationally identical to the aligned heap path.
//!
//! * shard table — `nprobe:u64 | dim:u64 | shards:u64 | total:u64 |
//!   centroids:f32[shards*dim] | per shard (len:u64 | ids:u32[len])` —
//!   the routing half of a sharded index ([`crate::sharded`]); the id
//!   lists are validated to partition `0..total` on load.

use crate::graph::FlatGraph;
use crate::mmap::{Advice, MmapBuf, MmapRegion};
use crate::quant::{CodecStore, PqStore, QuantizedStore, Sq4Store};
use crate::reorder::IdRemap;
use crate::store::VectorStore;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::fs;
use std::io;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"GASS";
const VERSION: u8 = 1;
/// Section kind: packed vector store.
pub const KIND_STORE: u8 = 1;
/// Section kind: flat adjacency graph.
pub const KIND_FLAT_GRAPH: u8 = 2;
/// Section kind: SQ8 quantized store (legacy single-codec section).
pub const KIND_QUANT: u8 = 3;
/// Section kind: reorder permutation.
pub const KIND_PERM: u8 = 4;
/// Section kind: codec store (SQ8/SQ4/PQ, packed).
pub const KIND_CODEC: u8 = 5;
/// Section kind: mapped vector store (page-aligned, stride-padded rows).
pub const KIND_MSTORE: u8 = 6;
/// Section kind: mapped codec store (page-aligned, stride-padded code rows).
pub const KIND_MCODEC: u8 = 7;
/// Section kind: shard table (centroids + per-shard global id lists).
pub const KIND_SHARDS: u8 = 8;

/// File offset where a mapped section's row data begins (one cache line;
/// keeps every row 64-byte aligned when the mapping itself is
/// page-aligned).
const MAP_DATA_ALIGN: usize = 64;

const CODEC_SQ8: u8 = 1;
const CODEC_SQ4: u8 = 2;
const CODEC_PQ: u8 = 3;

/// Errors arising while decoding a persisted structure.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or wrong magic header.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// Payload kind did not match the requested structure.
    WrongKind {
        /// Kind byte found in the file.
        found: u8,
        /// Kind byte the caller expected.
        expected: u8,
    },
    /// Payload shorter than its own header claims.
    Truncated,
    /// A persisted permutation whose id table is not a bijection.
    NotAPermutation(String),
    /// A codec section carrying an unrecognized codec tag.
    UnknownCodec(u8),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a GASS file (bad magic)"),
            PersistError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            PersistError::WrongKind { found, expected } => {
                write!(f, "wrong payload kind {found} (expected {expected})")
            }
            PersistError::Truncated => write!(f, "payload truncated"),
            PersistError::NotAPermutation(why) => {
                write!(f, "invalid permutation payload: {why}")
            }
            PersistError::UnknownCodec(tag) => {
                write!(f, "unknown codec tag {tag} (expected sq8=1, sq4=2 or pq=3)")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn header(kind: u8, capacity: usize) -> BytesMut {
    let mut buf = BytesMut::with_capacity(capacity + 6);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(kind);
    buf
}

fn check_header(buf: &mut Bytes, expected_kind: u8) -> Result<(), PersistError> {
    if buf.remaining() < 6 {
        return Err(PersistError::BadMagic);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let kind = buf.get_u8();
    if kind != expected_kind {
        return Err(PersistError::WrongKind { found: kind, expected: expected_kind });
    }
    Ok(())
}

/// Encodes a vector store. Rows are written packed (padding stripped), so
/// both layouts of the same vectors produce identical bytes; decoding
/// always yields the packed layout (re-align with
/// [`VectorStore::to_aligned`] if desired).
pub fn encode_store(store: &VectorStore) -> Bytes {
    let mut buf = header(KIND_STORE, 16 + store.len() * store.dim() * 4);
    buf.put_u64_le(store.dim() as u64);
    buf.put_u64_le(store.len() as u64);
    for (_, row) in store.iter() {
        for &x in row {
            buf.put_f32_le(x);
        }
    }
    buf.freeze()
}

/// Decodes a vector store.
pub fn decode_store(mut buf: Bytes) -> Result<VectorStore, PersistError> {
    check_header(&mut buf, KIND_STORE)?;
    if buf.remaining() < 16 {
        return Err(PersistError::Truncated);
    }
    let dim = buf.get_u64_le() as usize;
    let len = buf.get_u64_le() as usize;
    let want = dim.checked_mul(len).ok_or(PersistError::Truncated)?;
    if buf.remaining() < want * 4 {
        return Err(PersistError::Truncated);
    }
    let mut data = Vec::with_capacity(want);
    for _ in 0..want {
        data.push(buf.get_f32_le());
    }
    Ok(VectorStore::from_flat(dim.max(1), data))
}

/// Encodes a flat graph.
pub fn encode_flat_graph(graph: &FlatGraph) -> Bytes {
    use crate::graph::GraphView;
    let n = graph.num_nodes();
    let slots = graph.slots();
    let mut buf = header(KIND_FLAT_GRAPH, 16 + n * 4 + n * slots * 4);
    buf.put_u64_le(slots as u64);
    buf.put_u64_le(n as u64);
    for v in 0..n as u32 {
        buf.put_u32_le(graph.neighbors(v).len() as u32);
    }
    for v in 0..n as u32 {
        let ns = graph.neighbors(v);
        for &e in ns {
            buf.put_u32_le(e);
        }
        for _ in ns.len()..slots {
            buf.put_u32_le(0);
        }
    }
    buf.freeze()
}

/// Decodes a flat graph.
pub fn decode_flat_graph(mut buf: Bytes) -> Result<FlatGraph, PersistError> {
    check_header(&mut buf, KIND_FLAT_GRAPH)?;
    if buf.remaining() < 16 {
        return Err(PersistError::Truncated);
    }
    let slots = buf.get_u64_le() as usize;
    let n = buf.get_u64_le() as usize;
    if buf.remaining() < n * 4 {
        return Err(PersistError::Truncated);
    }
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        counts.push(buf.get_u32_le());
    }
    let want = n.checked_mul(slots).ok_or(PersistError::Truncated)?;
    if buf.remaining() < want * 4 {
        return Err(PersistError::Truncated);
    }
    // Rebuild through an adjacency graph to reuse the validated
    // constructor.
    let mut adj = crate::graph::AdjacencyGraph::new(n);
    let mut edges = Vec::with_capacity(want);
    for _ in 0..want {
        edges.push(buf.get_u32_le());
    }
    for v in 0..n {
        let c = (counts[v] as usize).min(slots);
        adj.set_neighbors(v as u32, edges[v * slots..v * slots + c].to_vec());
    }
    Ok(FlatGraph::from_adjacency(&adj, Some(slots.max(1))))
}

/// Encodes a quantized store (codes packed, padding stripped — see the
/// module docs). Quantization is deterministic, so an equal alternative to
/// persisting this section is re-encoding from the saved `f32` store on
/// load; persisting skips the extra pass and keeps the codes usable even
/// where the raw vectors are not shipped.
pub fn encode_quantized(quant: &QuantizedStore) -> Bytes {
    let dim = quant.dim();
    let mut buf = header(KIND_QUANT, 16 + dim * 8 + quant.len() * dim);
    buf.put_u64_le(dim as u64);
    buf.put_u64_le(quant.len() as u64);
    for &m in quant.mins() {
        buf.put_f32_le(m);
    }
    for &d in quant.deltas() {
        buf.put_f32_le(d);
    }
    buf.put_slice(&quant.to_packed_codes());
    buf.freeze()
}

/// Decodes a quantized store (rebuilding the cache-line-padded layout).
pub fn decode_quantized(mut buf: Bytes) -> Result<QuantizedStore, PersistError> {
    check_header(&mut buf, KIND_QUANT)?;
    if buf.remaining() < 16 {
        return Err(PersistError::Truncated);
    }
    let dim = buf.get_u64_le() as usize;
    let len = buf.get_u64_le() as usize;
    if dim == 0 {
        return Err(PersistError::Truncated);
    }
    if buf.remaining() < dim * 8 {
        return Err(PersistError::Truncated);
    }
    let mut mins = Vec::with_capacity(dim);
    for _ in 0..dim {
        mins.push(buf.get_f32_le());
    }
    let mut deltas = Vec::with_capacity(dim);
    for _ in 0..dim {
        deltas.push(buf.get_f32_le());
    }
    let want = dim.checked_mul(len).ok_or(PersistError::Truncated)?;
    if buf.remaining() < want {
        return Err(PersistError::Truncated);
    }
    let mut packed = vec![0u8; want];
    buf.copy_to_slice(&mut packed);
    Ok(QuantizedStore::from_parts(dim, mins, deltas, packed))
}

fn put_affine_body(buf: &mut BytesMut, dim: usize, len: usize, mins: &[f32], deltas: &[f32]) {
    buf.put_u64_le(dim as u64);
    buf.put_u64_le(len as u64);
    for &m in mins {
        buf.put_f32_le(m);
    }
    for &d in deltas {
        buf.put_f32_le(d);
    }
}

type AffineBody = (usize, Vec<f32>, Vec<f32>, Vec<u8>);

fn get_affine_body(
    buf: &mut Bytes,
    row_bytes: fn(usize) -> usize,
) -> Result<AffineBody, PersistError> {
    if buf.remaining() < 16 {
        return Err(PersistError::Truncated);
    }
    let dim = buf.get_u64_le() as usize;
    let len = buf.get_u64_le() as usize;
    if dim == 0 {
        return Err(PersistError::Truncated);
    }
    if buf.remaining() < dim * 8 {
        return Err(PersistError::Truncated);
    }
    let mut mins = Vec::with_capacity(dim);
    for _ in 0..dim {
        mins.push(buf.get_f32_le());
    }
    let mut deltas = Vec::with_capacity(dim);
    for _ in 0..dim {
        deltas.push(buf.get_f32_le());
    }
    let want = row_bytes(dim).checked_mul(len).ok_or(PersistError::Truncated)?;
    if buf.remaining() < want {
        return Err(PersistError::Truncated);
    }
    let mut packed = vec![0u8; want];
    buf.copy_to_slice(&mut packed);
    Ok((dim, mins, deltas, packed))
}

/// Encodes any [`CodecStore`] as a tagged codec section (see the module
/// docs). All three codecs persist their packed logical bytes; padded and
/// aligned layouts are rebuilt on load.
pub fn encode_codec(codec: &dyn CodecStore) -> Bytes {
    let any = codec.as_any();
    if let Some(q) = any.downcast_ref::<QuantizedStore>() {
        let dim = q.dim();
        let mut buf = header(KIND_CODEC, 17 + dim * 8 + q.len() * dim);
        buf.put_u8(CODEC_SQ8);
        put_affine_body(&mut buf, dim, q.len(), q.mins(), q.deltas());
        buf.put_slice(&q.to_packed_codes());
        buf.freeze()
    } else if let Some(q) = any.downcast_ref::<Sq4Store>() {
        let dim = q.dim();
        let mut buf = header(KIND_CODEC, 17 + dim * 8 + q.len() * dim.div_ceil(2));
        buf.put_u8(CODEC_SQ4);
        put_affine_body(&mut buf, dim, q.len(), q.mins(), q.deltas());
        buf.put_slice(&q.to_packed_codes());
        buf.freeze()
    } else if let Some(q) = any.downcast_ref::<PqStore>() {
        let mut buf = header(
            KIND_CODEC,
            33 + q.dim() * 4 + q.centroids().len() * 4 + q.len() * q.m().div_ceil(2),
        );
        buf.put_u8(CODEC_PQ);
        buf.put_u64_le(q.dim() as u64);
        buf.put_u64_le(q.m() as u64);
        buf.put_u64_le(q.ncent() as u64);
        buf.put_u64_le(q.len() as u64);
        for &d in q.perm() {
            buf.put_u32_le(d);
        }
        for &c in q.centroids() {
            buf.put_f32_le(c);
        }
        buf.put_slice(&q.to_packed_codes());
        buf.freeze()
    } else {
        unreachable!("unknown CodecStore implementation {:?}", codec.spec())
    }
}

/// Decodes a tagged codec section into the matching [`CodecStore`].
pub fn decode_codec(mut buf: Bytes) -> Result<Box<dyn CodecStore>, PersistError> {
    check_header(&mut buf, KIND_CODEC)?;
    if buf.remaining() < 1 {
        return Err(PersistError::Truncated);
    }
    match buf.get_u8() {
        CODEC_SQ8 => {
            let (dim, mins, deltas, packed) = get_affine_body(&mut buf, |dim| dim)?;
            Ok(Box::new(QuantizedStore::from_parts(dim, mins, deltas, packed)))
        }
        CODEC_SQ4 => {
            let (dim, mins, deltas, packed) = get_affine_body(&mut buf, |dim| dim.div_ceil(2))?;
            Ok(Box::new(Sq4Store::from_parts(dim, mins, deltas, packed)))
        }
        CODEC_PQ => {
            if buf.remaining() < 32 {
                return Err(PersistError::Truncated);
            }
            let dim = buf.get_u64_le() as usize;
            let m = buf.get_u64_le() as usize;
            let ncent = buf.get_u64_le() as usize;
            let len = buf.get_u64_le() as usize;
            if dim == 0
                || m == 0
                || m > dim
                || !dim.is_multiple_of(m)
                || ncent == 0
                || ncent > 16
            {
                return Err(PersistError::Truncated);
            }
            if buf.remaining() < dim * 4 {
                return Err(PersistError::Truncated);
            }
            let mut perm = Vec::with_capacity(dim);
            let mut seen = vec![false; dim];
            for _ in 0..dim {
                let d = buf.get_u32_le();
                if d as usize >= dim || std::mem::replace(&mut seen[d as usize], true) {
                    return Err(PersistError::Truncated);
                }
                perm.push(d);
            }
            let cents = m
                .checked_mul(16)
                .and_then(|x| x.checked_mul(dim / m))
                .ok_or(PersistError::Truncated)?;
            if buf.remaining() < cents * 4 {
                return Err(PersistError::Truncated);
            }
            let mut centroids = Vec::with_capacity(cents);
            for _ in 0..cents {
                centroids.push(buf.get_f32_le());
            }
            let want = m.div_ceil(2).checked_mul(len).ok_or(PersistError::Truncated)?;
            if buf.remaining() < want {
                return Err(PersistError::Truncated);
            }
            let mut packed = vec![0u8; want];
            buf.copy_to_slice(&mut packed);
            Ok(Box::new(PqStore::from_parts(dim, m, ncent, perm, centroids, packed)))
        }
        tag => Err(PersistError::UnknownCodec(tag)),
    }
}

/// Encodes a reorder permutation (the `new → old` placement order; the
/// inverse table is cheap to rebuild, so only one direction is stored).
pub fn encode_permutation(map: &IdRemap) -> Bytes {
    let mut buf = header(KIND_PERM, 8 + map.len() * 4);
    buf.put_u64_le(map.len() as u64);
    for &old in map.new_to_old() {
        buf.put_u32_le(old);
    }
    buf.freeze()
}

/// Decodes a reorder permutation, re-validating that it is a bijection.
pub fn decode_permutation(mut buf: Bytes) -> Result<IdRemap, PersistError> {
    check_header(&mut buf, KIND_PERM)?;
    if buf.remaining() < 8 {
        return Err(PersistError::Truncated);
    }
    let n = buf.get_u64_le() as usize;
    if buf.remaining() < n.checked_mul(4).ok_or(PersistError::Truncated)? {
        return Err(PersistError::Truncated);
    }
    let mut new_to_old = Vec::with_capacity(n);
    for _ in 0..n {
        new_to_old.push(buf.get_u32_le());
    }
    IdRemap::from_new_to_old(new_to_old).map_err(PersistError::NotAPermutation)
}

/// Writes a store to `path`.
pub fn save_store(store: &VectorStore, path: &Path) -> Result<(), PersistError> {
    fs::write(path, encode_store(store))?;
    Ok(())
}

/// Reads a store from `path`.
pub fn load_store(path: &Path) -> Result<VectorStore, PersistError> {
    decode_store(Bytes::from(fs::read(path)?))
}

/// Writes a flat graph to `path`.
pub fn save_flat_graph(graph: &FlatGraph, path: &Path) -> Result<(), PersistError> {
    fs::write(path, encode_flat_graph(graph))?;
    Ok(())
}

/// Reads a flat graph from `path`.
pub fn load_flat_graph(path: &Path) -> Result<FlatGraph, PersistError> {
    decode_flat_graph(Bytes::from(fs::read(path)?))
}

/// Writes a quantized store to `path`.
pub fn save_quantized(quant: &QuantizedStore, path: &Path) -> Result<(), PersistError> {
    fs::write(path, encode_quantized(quant))?;
    Ok(())
}

/// Reads a quantized store from `path`.
pub fn load_quantized(path: &Path) -> Result<QuantizedStore, PersistError> {
    decode_quantized(Bytes::from(fs::read(path)?))
}

/// Writes a codec store to `path`.
pub fn save_codec(codec: &dyn CodecStore, path: &Path) -> Result<(), PersistError> {
    fs::write(path, encode_codec(codec))?;
    Ok(())
}

/// Reads a codec store from `path`.
pub fn load_codec(path: &Path) -> Result<Box<dyn CodecStore>, PersistError> {
    decode_codec(Bytes::from(fs::read(path)?))
}

/// Writes a reorder permutation to `path`.
pub fn save_permutation(map: &IdRemap, path: &Path) -> Result<(), PersistError> {
    fs::write(path, encode_permutation(map))?;
    Ok(())
}

/// Reads a reorder permutation from `path`.
pub fn load_permutation(path: &Path) -> Result<IdRemap, PersistError> {
    decode_permutation(Bytes::from(fs::read(path)?))
}

// --- mapped sections ----------------------------------------------------

/// Reads just the kind byte of a GASS file (validating magic and version)
/// without touching the payload — how [`open_store`]/[`open_codec`]
/// dispatch between heap and mapped representations.
pub fn peek_kind(path: &Path) -> Result<u8, PersistError> {
    let mut head = [0u8; 6];
    fs::File::open(path)?.read_exact(&mut head).map_err(|_| PersistError::BadMagic)?;
    if &head[..4] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    if head[4] != VERSION {
        return Err(PersistError::BadVersion(head[4]));
    }
    Ok(head[5])
}

/// A tiny byte cursor for parsing mapped-section headers in place (the
/// `Bytes` helpers would need the whole — possibly huge — file copied
/// into an owned buffer first).
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.bytes.len() {
            return Err(PersistError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn get_u64_le(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn get_u32_le(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn get_f32_le(&mut self) -> Result<f32, PersistError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn check_header(&mut self, expected_kind: u8) -> Result<(), PersistError> {
        if self.take(4).map_err(|_| PersistError::BadMagic)? != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = self.get_u8().map_err(|_| PersistError::BadMagic)?;
        if version != VERSION {
            return Err(PersistError::BadVersion(version));
        }
        let kind = self.get_u8().map_err(|_| PersistError::BadMagic)?;
        if kind != expected_kind {
            return Err(PersistError::WrongKind { found: kind, expected: expected_kind });
        }
        Ok(())
    }
}

/// Streams a mapped-layout store file row by row — the writer behind
/// [`save_store_mapped`], exposed so dataset generators can emit tiers
/// larger than RAM without ever materializing the store on the heap.
pub struct MappedStoreWriter {
    out: io::BufWriter<fs::File>,
    dim: usize,
    stride: usize,
    len: usize,
    written: usize,
}

impl MappedStoreWriter {
    /// Creates `path` and writes the mapped-store header for `len` rows of
    /// dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn create(path: &Path, dim: usize, len: usize) -> Result<Self, PersistError> {
        assert!(dim > 0, "vector dimension must be positive");
        let mut out = io::BufWriter::new(fs::File::create(path)?);
        let mut head = [0u8; MAP_DATA_ALIGN];
        head[..4].copy_from_slice(MAGIC);
        head[4] = VERSION;
        head[5] = KIND_MSTORE;
        head[6..14].copy_from_slice(&(dim as u64).to_le_bytes());
        head[14..22].copy_from_slice(&(len as u64).to_le_bytes());
        out.write_all(&head)?;
        Ok(Self { out, dim, stride: crate::store::aligned_stride(dim), len, written: 0 })
    }

    /// Appends one row (zero-padded to the aligned stride on disk).
    ///
    /// # Panics
    /// Panics on a row of the wrong dimension or past the declared length.
    pub fn push_row(&mut self, row: &[f32]) -> Result<(), PersistError> {
        assert_eq!(row.len(), self.dim, "row dimension mismatch");
        assert!(self.written < self.len, "more rows than declared");
        for &x in row {
            self.out.write_all(&x.to_le_bytes())?;
        }
        for _ in self.dim..self.stride {
            self.out.write_all(&0f32.to_le_bytes())?;
        }
        self.written += 1;
        Ok(())
    }

    /// Flushes and closes the file.
    ///
    /// # Panics
    /// Panics if fewer rows than declared were pushed.
    pub fn finish(mut self) -> Result<(), PersistError> {
        assert_eq!(self.written, self.len, "fewer rows than declared");
        self.out.flush()?;
        Ok(())
    }
}

/// Writes a store to `path` in the mapped layout (padded rows in place).
pub fn save_store_mapped(store: &VectorStore, path: &Path) -> Result<(), PersistError> {
    let mut w = MappedStoreWriter::create(path, store.dim(), store.len())?;
    for (_, row) in store.iter() {
        w.push_row(row)?;
    }
    w.finish()
}

fn mstore_header(bytes: &[u8]) -> Result<(usize, usize), PersistError> {
    let mut cur = Cursor::new(bytes);
    cur.check_header(KIND_MSTORE)?;
    let dim = cur.get_u64_le()? as usize;
    let len = cur.get_u64_le()? as usize;
    if dim == 0 {
        return Err(PersistError::Truncated);
    }
    Ok((dim, len))
}

fn mapped_store_view(buf: Arc<MmapBuf>) -> Result<VectorStore, PersistError> {
    let (dim, len) = mstore_header(buf.as_bytes())?;
    let stride = crate::store::aligned_stride(dim);
    let want = len
        .checked_mul(stride)
        .and_then(|x| x.checked_mul(4))
        .ok_or(PersistError::Truncated)?;
    if buf.len() < MAP_DATA_ALIGN + want {
        return Err(PersistError::Truncated);
    }
    let region = MmapRegion::new(buf, MAP_DATA_ALIGN, want);
    // Graph traversal touches rows in id order only by accident.
    region.advise(Advice::Random);
    Ok(VectorStore::from_mapped(dim, len, region))
}

/// Opens a mapped-layout store file: a live mapping when enabled and
/// supported, otherwise a file-backed parse into an aligned heap store
/// (same vectors, same ids — only residency differs).
pub fn open_store_mapped(path: &Path) -> Result<VectorStore, PersistError> {
    if crate::mmap::mmap_enabled() {
        if let Ok(buf) = MmapBuf::open_mapped(path) {
            return mapped_store_view(buf);
        }
    }
    let raw = fs::read(path)?;
    let (dim, len) = mstore_header(&raw)?;
    let stride = crate::store::aligned_stride(dim);
    let want = len
        .checked_mul(stride)
        .and_then(|x| x.checked_mul(4))
        .ok_or(PersistError::Truncated)?;
    if raw.len() < MAP_DATA_ALIGN + want {
        return Err(PersistError::Truncated);
    }
    let mut store = VectorStore::aligned_with_capacity(dim, len);
    let mut row = vec![0f32; dim];
    for i in 0..len {
        let start = MAP_DATA_ALIGN + i * stride * 4;
        for (x, b) in row.iter_mut().zip(raw[start..start + dim * 4].chunks_exact(4)) {
            *x = f32::from_le_bytes(b.try_into().unwrap());
        }
        store.push(&row);
    }
    Ok(store)
}

/// Opens a store file of either representation: packed ([`KIND_STORE`],
/// re-aligned in memory by callers as usual) or mapped.
pub fn open_store(path: &Path) -> Result<VectorStore, PersistError> {
    match peek_kind(path)? {
        KIND_MSTORE => open_store_mapped(path),
        _ => load_store(path),
    }
}

/// Writes a codec store to `path` in the mapped layout: the codec-section
/// parameters, zero pad to a 64-byte boundary, then the padded code rows
/// exactly as the kernels scan them.
pub fn save_codec_mapped(codec: &dyn CodecStore, path: &Path) -> Result<(), PersistError> {
    let any = codec.as_any();
    let mut head = header(KIND_MCODEC, 64);
    let (len, stride): (usize, usize) = if let Some(q) = any.downcast_ref::<QuantizedStore>() {
        head.put_u8(CODEC_SQ8);
        put_affine_body(&mut head, q.dim(), q.len(), q.mins(), q.deltas());
        (q.len(), q.stride())
    } else if let Some(q) = any.downcast_ref::<Sq4Store>() {
        head.put_u8(CODEC_SQ4);
        put_affine_body(&mut head, q.dim(), q.len(), q.mins(), q.deltas());
        (q.len(), q.stride())
    } else if let Some(q) = any.downcast_ref::<PqStore>() {
        head.put_u8(CODEC_PQ);
        head.put_u64_le(q.dim() as u64);
        head.put_u64_le(q.m() as u64);
        head.put_u64_le(q.ncent() as u64);
        head.put_u64_le(q.len() as u64);
        for &d in q.perm() {
            head.put_u32_le(d);
        }
        for &c in q.centroids() {
            head.put_f32_le(c);
        }
        (q.len(), q.stride())
    } else {
        unreachable!("unknown CodecStore implementation {:?}", codec.spec())
    };
    while !head.len().is_multiple_of(MAP_DATA_ALIGN) {
        head.put_u8(0);
    }
    let mut out = io::BufWriter::new(fs::File::create(path)?);
    out.write_all(head.as_ref())?;
    for id in 0..len as u32 {
        out.write_all(codec.code_row(id))?;
    }
    // PQ strides are 16-byte; pad the code area tail to whole lines.
    let tail = (len * stride).next_multiple_of(MAP_DATA_ALIGN) - len * stride;
    out.write_all(&vec![0u8; tail])?;
    out.flush()?;
    Ok(())
}

/// Parsed parameter block of a mapped codec section, plus the layout the
/// code area must have.
struct McodecHead {
    params: McodecParams,
    /// File offset of the code area (64-byte aligned).
    data_offset: usize,
    /// Code-area bytes (tail padding included).
    code_bytes: usize,
    /// Logical bytes per row (padding stripped) — the heap-fallback width.
    row_bytes: usize,
    /// Padded bytes per row.
    stride: usize,
    len: usize,
}

enum McodecParams {
    Affine { tag: u8, dim: usize, mins: Vec<f32>, deltas: Vec<f32> },
    Pq { dim: usize, m: usize, ncent: usize, perm: Vec<u32>, centroids: Vec<f32> },
}

fn mcodec_header(bytes: &[u8]) -> Result<McodecHead, PersistError> {
    let mut cur = Cursor::new(bytes);
    cur.check_header(KIND_MCODEC)?;
    let tag = cur.get_u8()?;
    let (params, len, row_bytes, stride) = match tag {
        CODEC_SQ8 | CODEC_SQ4 => {
            let dim = cur.get_u64_le()? as usize;
            let len = cur.get_u64_le()? as usize;
            if dim == 0 {
                return Err(PersistError::Truncated);
            }
            let mut mins = Vec::with_capacity(dim);
            for _ in 0..dim {
                mins.push(cur.get_f32_le()?);
            }
            let mut deltas = Vec::with_capacity(dim);
            for _ in 0..dim {
                deltas.push(cur.get_f32_le()?);
            }
            let (row_bytes, stride) = if tag == CODEC_SQ8 {
                (dim, crate::quant::sq8::quant_stride(dim))
            } else {
                (dim.div_ceil(2), crate::quant::sq4::sq4_stride(dim))
            };
            (McodecParams::Affine { tag, dim, mins, deltas }, len, row_bytes, stride)
        }
        CODEC_PQ => {
            let dim = cur.get_u64_le()? as usize;
            let m = cur.get_u64_le()? as usize;
            let ncent = cur.get_u64_le()? as usize;
            let len = cur.get_u64_le()? as usize;
            if dim == 0
                || m == 0
                || m > dim
                || !dim.is_multiple_of(m)
                || !(1..=16).contains(&ncent)
            {
                return Err(PersistError::Truncated);
            }
            let mut perm = Vec::with_capacity(dim);
            let mut seen = vec![false; dim];
            for _ in 0..dim {
                let d = cur.get_u32_le()?;
                if d as usize >= dim || std::mem::replace(&mut seen[d as usize], true) {
                    return Err(PersistError::Truncated);
                }
                perm.push(d);
            }
            let cents = m * 16 * (dim / m);
            let mut centroids = Vec::with_capacity(cents);
            for _ in 0..cents {
                centroids.push(cur.get_f32_le()?);
            }
            (
                McodecParams::Pq { dim, m, ncent, perm, centroids },
                len,
                m.div_ceil(2),
                crate::quant::pq::pq_stride(m),
            )
        }
        tag => return Err(PersistError::UnknownCodec(tag)),
    };
    let data_offset = cur.pos.next_multiple_of(MAP_DATA_ALIGN);
    let code_bytes = len
        .checked_mul(stride)
        .map(|x| x.next_multiple_of(MAP_DATA_ALIGN))
        .ok_or(PersistError::Truncated)?;
    if bytes.len() < data_offset + code_bytes {
        return Err(PersistError::Truncated);
    }
    Ok(McodecHead { params, data_offset, code_bytes, row_bytes, stride, len })
}

fn mapped_codec_view(buf: Arc<MmapBuf>) -> Result<Box<dyn CodecStore>, PersistError> {
    let head = mcodec_header(buf.as_bytes())?;
    let region = MmapRegion::new(buf, head.data_offset, head.code_bytes);
    region.advise(Advice::Random);
    Ok(match head.params {
        McodecParams::Affine { tag: CODEC_SQ8, dim, mins, deltas } => {
            Box::new(QuantizedStore::from_parts_mapped(dim, mins, deltas, head.len, region))
        }
        McodecParams::Affine { dim, mins, deltas, .. } => {
            Box::new(Sq4Store::from_parts_mapped(dim, mins, deltas, head.len, region))
        }
        McodecParams::Pq { dim, m, ncent, perm, centroids } => Box::new(
            PqStore::from_parts_mapped(dim, m, ncent, perm, centroids, head.len, region),
        ),
    })
}

/// Opens a mapped-layout codec file: a live mapping when enabled and
/// supported, otherwise a parse into the ordinary heap codec.
pub fn open_codec_mapped(path: &Path) -> Result<Box<dyn CodecStore>, PersistError> {
    if crate::mmap::mmap_enabled() {
        if let Ok(buf) = MmapBuf::open_mapped(path) {
            return mapped_codec_view(buf);
        }
    }
    let raw = fs::read(path)?;
    let head = mcodec_header(&raw)?;
    // Strip the row padding back to the packed representation and reuse
    // the validated heap constructors.
    let mut packed = Vec::with_capacity(head.len * head.row_bytes);
    for i in 0..head.len {
        let start = head.data_offset + i * head.stride;
        packed.extend_from_slice(&raw[start..start + head.row_bytes]);
    }
    Ok(match head.params {
        McodecParams::Affine { tag: CODEC_SQ8, dim, mins, deltas } => {
            Box::new(QuantizedStore::from_parts(dim, mins, deltas, packed))
        }
        McodecParams::Affine { dim, mins, deltas, .. } => {
            Box::new(Sq4Store::from_parts(dim, mins, deltas, packed))
        }
        McodecParams::Pq { dim, m, ncent, perm, centroids } => {
            Box::new(PqStore::from_parts(dim, m, ncent, perm, centroids, packed))
        }
    })
}

/// Opens a codec file of any representation: tagged codec section, legacy
/// SQ8 quantized section, or mapped codec.
pub fn open_codec(path: &Path) -> Result<Box<dyn CodecStore>, PersistError> {
    match peek_kind(path)? {
        KIND_MCODEC => open_codec_mapped(path),
        KIND_QUANT => Ok(Box::new(load_quantized(path)?)),
        _ => load_codec(path),
    }
}

// --- shard tables -------------------------------------------------------

/// The routing half of a sharded index: per-shard centroids plus the
/// global ids each shard holds (see [`crate::sharded`]).
#[derive(Clone, Debug)]
pub struct ShardTable {
    /// Shards searched per query (the persisted default).
    pub nprobe: usize,
    /// Vector dimensionality.
    pub dim: usize,
    /// `shards * dim` floats, shard `s`'s centroid at `[s*dim..][..dim]`.
    pub centroids: Vec<f32>,
    /// Per-shard global id lists (`shard_ids[s][local] = global`); the
    /// lists partition `0..total`.
    pub shard_ids: Vec<Vec<u32>>,
}

/// Encodes a shard table.
pub fn encode_shard_table(table: &ShardTable) -> Bytes {
    let total: usize = table.shard_ids.iter().map(Vec::len).sum();
    let mut buf = header(
        KIND_SHARDS,
        32 + table.centroids.len() * 4 + table.shard_ids.len() * 8 + total * 4,
    );
    buf.put_u64_le(table.nprobe as u64);
    buf.put_u64_le(table.dim as u64);
    buf.put_u64_le(table.shard_ids.len() as u64);
    buf.put_u64_le(total as u64);
    for &c in &table.centroids {
        buf.put_f32_le(c);
    }
    for ids in &table.shard_ids {
        buf.put_u64_le(ids.len() as u64);
        for &id in ids {
            buf.put_u32_le(id);
        }
    }
    buf.freeze()
}

/// Decodes a shard table, re-validating that the id lists partition the
/// id space.
pub fn decode_shard_table(mut buf: Bytes) -> Result<ShardTable, PersistError> {
    check_header(&mut buf, KIND_SHARDS)?;
    if buf.remaining() < 32 {
        return Err(PersistError::Truncated);
    }
    let nprobe = buf.get_u64_le() as usize;
    let dim = buf.get_u64_le() as usize;
    let shards = buf.get_u64_le() as usize;
    let total = buf.get_u64_le() as usize;
    if dim == 0 || shards == 0 || nprobe == 0 || nprobe > shards {
        return Err(PersistError::Truncated);
    }
    let cents = shards.checked_mul(dim).ok_or(PersistError::Truncated)?;
    if buf.remaining() < cents * 4 {
        return Err(PersistError::Truncated);
    }
    let mut centroids = Vec::with_capacity(cents);
    for _ in 0..cents {
        centroids.push(buf.get_f32_le());
    }
    let mut shard_ids = Vec::with_capacity(shards);
    let mut seen = vec![false; total];
    for _ in 0..shards {
        if buf.remaining() < 8 {
            return Err(PersistError::Truncated);
        }
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len.checked_mul(4).ok_or(PersistError::Truncated)? {
            return Err(PersistError::Truncated);
        }
        let mut ids = Vec::with_capacity(len);
        for _ in 0..len {
            let id = buf.get_u32_le();
            if id as usize >= total || std::mem::replace(&mut seen[id as usize], true) {
                return Err(PersistError::NotAPermutation(format!(
                    "shard id {id} repeats or exceeds the declared total {total}"
                )));
            }
            ids.push(id);
        }
        shard_ids.push(ids);
    }
    if seen.iter().any(|&s| !s) {
        return Err(PersistError::NotAPermutation(format!(
            "shard id lists do not cover 0..{total}"
        )));
    }
    Ok(ShardTable { nprobe, dim, centroids, shard_ids })
}

/// Writes a shard table to `path`.
pub fn save_shard_table(table: &ShardTable, path: &Path) -> Result<(), PersistError> {
    fs::write(path, encode_shard_table(table))?;
    Ok(())
}

/// Reads a shard table from `path`.
pub fn load_shard_table(path: &Path) -> Result<ShardTable, PersistError> {
    decode_shard_table(Bytes::from(fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AdjacencyGraph, GraphView};

    fn sample_store() -> VectorStore {
        VectorStore::from_flat(3, vec![1.0, 2.0, 3.0, -4.5, 0.0, 9.25])
    }

    fn sample_graph() -> FlatGraph {
        let mut g = AdjacencyGraph::new(4);
        g.set_neighbors(0, vec![1, 2]);
        g.set_neighbors(1, vec![0]);
        g.set_neighbors(2, vec![3, 0, 1]);
        FlatGraph::from_adjacency(&g, Some(3))
    }

    #[test]
    fn store_roundtrip() {
        let store = sample_store();
        let decoded = decode_store(encode_store(&store)).unwrap();
        assert_eq!(decoded.dim(), 3);
        assert_eq!(decoded.as_flat(), store.as_flat());
    }

    #[test]
    fn graph_roundtrip() {
        let g = sample_graph();
        let decoded = decode_flat_graph(encode_flat_graph(&g)).unwrap();
        assert_eq!(decoded.num_nodes(), 4);
        for v in 0..4 {
            assert_eq!(decoded.neighbors(v), g.neighbors(v), "node {v}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("gass_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let store_path = dir.join("store.gass");
        let graph_path = dir.join("graph.gass");
        save_store(&sample_store(), &store_path).unwrap();
        save_flat_graph(&sample_graph(), &graph_path).unwrap();
        assert_eq!(load_store(&store_path).unwrap().len(), 2);
        assert_eq!(load_flat_graph(&graph_path).unwrap().num_edges(), 6);
    }

    #[test]
    fn quantized_roundtrip_preserves_codes_and_distances() {
        let store = VectorStore::from_flat(
            5,
            (0..65).map(|i| ((i * 17) as f32 * 0.23).sin() * 4.0).collect(),
        );
        let quant = QuantizedStore::from_store(&store);
        let decoded = decode_quantized(encode_quantized(&quant)).unwrap();
        assert_eq!(decoded.len(), quant.len());
        assert_eq!(decoded.dim(), quant.dim());
        assert_eq!(decoded.mins(), quant.mins());
        assert_eq!(decoded.deltas(), quant.deltas());
        let query = [0.5f32, -1.0, 2.0, 0.0, 1.25];
        let mut pq_a = crate::quant::PreparedQuery::default();
        let mut pq_b = crate::quant::PreparedQuery::default();
        quant.prepare_into(&query, &mut pq_a);
        decoded.prepare_into(&query, &mut pq_b);
        for id in 0..quant.len() as u32 {
            assert_eq!(decoded.code_row(id), quant.code_row(id), "row {id}");
            assert_eq!(
                decoded.dist_prepared(&pq_b, id).to_bits(),
                quant.dist_prepared(&pq_a, id).to_bits(),
                "distance {id}"
            );
        }
    }

    #[test]
    fn quantized_file_roundtrip_and_truncation() {
        let store = sample_store();
        let quant = QuantizedStore::from_store(&store);
        let dir = std::env::temp_dir().join("gass_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quant.gass");
        save_quantized(&quant, &path).unwrap();
        assert_eq!(load_quantized(&path).unwrap().len(), 2);
        let bytes = encode_quantized(&quant);
        let cut = bytes.slice(0..bytes.len() - 1);
        assert!(matches!(decode_quantized(cut).unwrap_err(), PersistError::Truncated));
        let err = decode_quantized(encode_store(&store)).unwrap_err();
        assert!(matches!(err, PersistError::WrongKind { .. }));
    }

    #[test]
    fn codec_roundtrip_preserves_codes_for_every_codec() {
        let store = VectorStore::from_flat(
            6,
            (0..90).map(|i| ((i * 13) as f32 * 0.31).sin() * 5.0).collect(),
        );
        let query = [0.5f32, -1.0, 2.0, 0.0, 1.25, -0.75];
        let codecs: Vec<Box<dyn CodecStore>> = vec![
            Box::new(QuantizedStore::from_store(&store)),
            Box::new(Sq4Store::from_store(&store)),
            Box::new(PqStore::from_store(&store, Some(2))),
        ];
        for codec in codecs {
            let decoded = decode_codec(encode_codec(codec.as_ref())).unwrap();
            assert_eq!(decoded.spec(), codec.spec());
            assert_eq!(decoded.len(), codec.len());
            assert_eq!(decoded.dim(), codec.dim());
            let mut pq_a = crate::quant::PreparedQuery::default();
            let mut pq_b = crate::quant::PreparedQuery::default();
            codec.prepare_into(&query, &mut pq_a);
            decoded.prepare_into(&query, &mut pq_b);
            for id in 0..codec.len() as u32 {
                assert_eq!(
                    decoded.code_row(id),
                    codec.code_row(id),
                    "{} row {id}",
                    codec.spec()
                );
                assert_eq!(
                    decoded.dist_prepared(&pq_b, id).to_bits(),
                    codec.dist_prepared(&pq_a, id).to_bits(),
                    "{} distance {id}",
                    codec.spec()
                );
            }
        }
    }

    #[test]
    fn codec_file_roundtrip_truncation_and_unknown_tag() {
        let store = sample_store();
        let codec = Sq4Store::from_store(&store);
        let dir = std::env::temp_dir().join("gass_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("codec.gass");
        save_codec(&codec, &path).unwrap();
        let back = load_codec(&path).unwrap();
        assert_eq!(back.spec(), crate::quant::CodecSpec::Sq4);
        assert_eq!(back.len(), 2);
        let bytes = encode_codec(&codec);
        let cut = bytes.slice(0..bytes.len() - 1);
        assert!(matches!(decode_codec(cut).unwrap_err(), PersistError::Truncated));
        assert!(matches!(
            decode_codec(encode_store(&store)).unwrap_err(),
            PersistError::WrongKind { .. }
        ));
        let mut raw = bytes.to_vec();
        raw[6] = 99; // codec tag byte
        assert!(matches!(
            decode_codec(Bytes::from(raw)).unwrap_err(),
            PersistError::UnknownCodec(99)
        ));
    }

    #[test]
    fn permutation_roundtrip_and_rejection() {
        let map = IdRemap::from_new_to_old(vec![3, 0, 2, 1]).unwrap();
        let decoded = decode_permutation(encode_permutation(&map)).unwrap();
        assert_eq!(decoded, map);
        for old in 0..4u32 {
            assert_eq!(decoded.to_old(decoded.to_new(old)), old);
        }
        // File round-trip.
        let dir = std::env::temp_dir().join("gass_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("perm.gass");
        save_permutation(&map, &path).unwrap();
        assert_eq!(load_permutation(&path).unwrap(), map);
        // Truncation.
        let bytes = encode_permutation(&map);
        let cut = bytes.slice(0..bytes.len() - 1);
        assert!(matches!(decode_permutation(cut).unwrap_err(), PersistError::Truncated));
        // Kind mismatch both ways.
        assert!(matches!(
            decode_permutation(encode_store(&sample_store())).unwrap_err(),
            PersistError::WrongKind { .. }
        ));
        assert!(matches!(
            decode_store(encode_permutation(&map)).unwrap_err(),
            PersistError::WrongKind { .. }
        ));
        // A tampered payload that is no longer a bijection is rejected.
        let mut raw = encode_permutation(&map).to_vec();
        raw[18] = 3; // second entry 0 -> 3: id 3 now appears twice
        assert!(matches!(
            decode_permutation(Bytes::from(raw)).unwrap_err(),
            PersistError::NotAPermutation(_)
        ));
    }

    /// Serializes the tests that flip the process-wide mmap toggle.
    static MMAP_FLAG: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn mapped_store_roundtrips_and_matches_heap() {
        let _guard = MMAP_FLAG.lock().unwrap();
        let store = VectorStore::from_flat(
            5,
            (0..85).map(|i| ((i * 11) as f32 * 0.37).sin() * 3.0).collect(),
        )
        .to_aligned();
        let dir = std::env::temp_dir().join("gass_persist_mapped");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mstore.gass");
        save_store_mapped(&store, &path).unwrap();
        // Kind sniffing dispatches to the mapped opener.
        assert_eq!(peek_kind(&path).unwrap(), KIND_MSTORE);
        for mapped_on in [true, false] {
            crate::mmap::set_mmap_enabled(mapped_on);
            let back = open_store(&path).unwrap();
            assert_eq!(back.len(), store.len());
            assert_eq!(back.dim(), store.dim());
            assert!(back.is_aligned());
            for id in 0..store.len() as u32 {
                assert_eq!(back.get(id), store.get(id), "row {id}, mapped={mapped_on}");
            }
            assert_eq!(back.is_mapped(), mapped_on && cfg!(unix));
        }
        crate::mmap::set_mmap_enabled(true);
        // Writing the loaded store back is byte-stable.
        let path2 = dir.join("mstore2.gass");
        save_store_mapped(&open_store(&path).unwrap(), &path2).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&path2).unwrap());
        // open_store still reads the packed kind transparently.
        let packed = dir.join("packed.gass");
        save_store(&store, &packed).unwrap();
        assert_eq!(open_store(&packed).unwrap().as_flat(), store.to_packed().as_flat());
    }

    #[test]
    fn mapped_codec_roundtrips_bit_identically_for_every_codec() {
        let _guard = MMAP_FLAG.lock().unwrap();
        let store = VectorStore::from_flat(
            6,
            (0..120).map(|i| ((i * 7) as f32 * 0.29).cos() * 4.0).collect(),
        );
        let query = [0.25f32, -1.5, 2.0, 0.5, -0.75, 1.0];
        let codecs: Vec<Box<dyn CodecStore>> = vec![
            Box::new(QuantizedStore::from_store(&store)),
            Box::new(Sq4Store::from_store(&store)),
            Box::new(PqStore::from_store(&store, Some(3))),
        ];
        let dir = std::env::temp_dir().join("gass_persist_mapped");
        std::fs::create_dir_all(&dir).unwrap();
        for codec in codecs {
            let path = dir.join(format!("mcodec-{}.gass", codec.spec()));
            save_codec_mapped(codec.as_ref(), &path).unwrap();
            assert_eq!(peek_kind(&path).unwrap(), KIND_MCODEC);
            for mapped_on in [true, false] {
                crate::mmap::set_mmap_enabled(mapped_on);
                let back = open_codec(&path).unwrap();
                assert_eq!(back.spec(), codec.spec());
                assert_eq!(back.len(), codec.len());
                let mut pq_a = crate::quant::PreparedQuery::default();
                let mut pq_b = crate::quant::PreparedQuery::default();
                codec.prepare_into(&query, &mut pq_a);
                back.prepare_into(&query, &mut pq_b);
                for id in 0..codec.len() as u32 {
                    assert_eq!(
                        back.code_row(id),
                        codec.code_row(id),
                        "{} row {id}, mapped={mapped_on}",
                        codec.spec()
                    );
                    assert_eq!(
                        back.dist_prepared(&pq_b, id).to_bits(),
                        codec.dist_prepared(&pq_a, id).to_bits(),
                        "{} distance {id}, mapped={mapped_on}",
                        codec.spec()
                    );
                }
            }
            crate::mmap::set_mmap_enabled(true);
            // Tampered headers fail cleanly, not at the map boundary.
            let mut raw = std::fs::read(&path).unwrap();
            raw.truncate(raw.len() - 1);
            std::fs::write(dir.join("cut.gass"), raw).unwrap();
            assert!(matches!(
                open_codec(&dir.join("cut.gass")).unwrap_err(),
                PersistError::Truncated
            ));
        }
    }

    #[test]
    fn mapped_store_writer_streams_rows() {
        let dir = std::env::temp_dir().join("gass_persist_mapped");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("streamed.gass");
        let mut w = MappedStoreWriter::create(&path, 3, 4).unwrap();
        for i in 0..4 {
            w.push_row(&[i as f32, i as f32 + 0.5, -(i as f32)]).unwrap();
        }
        w.finish().unwrap();
        let back = open_store(&path).unwrap();
        assert_eq!(back.len(), 4);
        assert_eq!(back.get(2), &[2.0, 2.5, -2.0]);
        // Identical bytes to the one-shot writer over the same rows.
        let mut store = VectorStore::new(3);
        for i in 0..4 {
            store.push(&[i as f32, i as f32 + 0.5, -(i as f32)]);
        }
        let path2 = dir.join("oneshot.gass");
        save_store_mapped(&store, &path2).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&path2).unwrap());
    }

    #[test]
    fn shard_table_roundtrip_and_partition_validation() {
        let table = ShardTable {
            nprobe: 2,
            dim: 3,
            centroids: (0..9).map(|i| i as f32 * 0.5).collect(),
            shard_ids: vec![vec![0, 3, 4], vec![1, 5], vec![2, 6]],
        };
        let bytes = encode_shard_table(&table);
        let back = decode_shard_table(bytes.clone()).unwrap();
        assert_eq!(back.nprobe, 2);
        assert_eq!(back.dim, 3);
        assert_eq!(back.centroids, table.centroids);
        assert_eq!(back.shard_ids, table.shard_ids);
        // Byte-stable re-encode.
        assert_eq!(encode_shard_table(&back).as_ref(), bytes.as_ref());
        // Truncation and duplicate-id rejection.
        let cut = bytes.slice(0..bytes.len() - 1);
        assert!(matches!(decode_shard_table(cut).unwrap_err(), PersistError::Truncated));
        let mut dup = table.shard_ids.clone();
        dup[2][1] = 5; // id 5 now in two shards
        let bad = ShardTable {
            nprobe: table.nprobe,
            dim: table.dim,
            centroids: table.centroids.clone(),
            shard_ids: dup,
        };
        assert!(matches!(
            decode_shard_table(encode_shard_table(&bad)).unwrap_err(),
            PersistError::NotAPermutation(_)
        ));
        // File round-trip.
        let dir = std::env::temp_dir().join("gass_persist_mapped");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shards.gass");
        save_shard_table(&table, &path).unwrap();
        assert_eq!(load_shard_table(&path).unwrap().shard_ids, table.shard_ids);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = decode_store(Bytes::from_static(b"NOPE....")).unwrap_err();
        assert!(matches!(err, PersistError::BadMagic));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let bytes = encode_store(&sample_store());
        let err = decode_flat_graph(bytes).unwrap_err();
        assert!(matches!(err, PersistError::WrongKind { .. }));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode_store(&sample_store());
        let cut = bytes.slice(0..bytes.len() - 3);
        let err = decode_store(cut).unwrap_err();
        assert!(matches!(err, PersistError::Truncated));
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut raw = encode_store(&sample_store()).to_vec();
        raw[4] = 99; // version byte
        let err = decode_store(Bytes::from(raw)).unwrap_err();
        assert!(matches!(err, PersistError::BadVersion(99)));
    }
}
