#!/usr/bin/env python3
"""Inject measured results from results/*.tsv into EXPERIMENTS.md.

Each `<!-- MARKER -->` placeholder is replaced by a fenced excerpt of the
corresponding TSV (full table when small, informative slice when large).
Idempotent: reruns replace previous injections (delimited by marker
comments).
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"
DOC = ROOT / "EXPERIMENTS.md"


def tsv_rows(name):
    path = RESULTS / f"{name}.tsv"
    if not path.exists():
        return None
    return [line.rstrip("\n") for line in path.read_text().splitlines() if line.strip()]


def fenced(rows):
    return "```\n" + "\n".join(rows) + "\n```"


def full(name, limit=None):
    rows = tsv_rows(name)
    if rows is None:
        return "_results TSV not found — run the harness first._"
    if limit and len(rows) > limit + 1:
        kept = rows[: limit + 1]
        kept.append(f"... ({len(rows) - 1 - limit} more rows in results/{name}.tsv)")
        return fenced(kept)
    return fenced(rows)


def filtered(name, pred, note):
    rows = tsv_rows(name)
    if rows is None:
        return "_results TSV not found — run the harness first._"
    kept = [rows[0]] + [r for r in rows[1:] if pred(r.split("\t"))]
    out = fenced(kept)
    if note:
        out += f"\n_{note}_"
    return out


def high_recall_slice(name, recall_col, method_col):
    """Best (cheapest) row per method with recall >= 0.9, else the row with
    max recall — a compact who-wins summary of a sweep TSV."""
    rows = tsv_rows(name)
    if rows is None:
        return "_results TSV not found — run the harness first._"
    header = rows[0].split("\t")
    best = {}
    for r in rows[1:]:
        cells = r.split("\t")
        key = tuple(cells[i] for i in range(method_col))  # dataset/tier prefix
        method = cells[method_col]
        recall = float(cells[recall_col])
        entry = best.setdefault((key, method), None)
        ok = recall >= 0.9
        if entry is None:
            best[(key, method)] = (ok, recall, cells)
        else:
            e_ok, e_recall, e_cells = entry
            if ok and not e_ok:
                best[(key, method)] = (ok, recall, cells)
            elif ok == e_ok:
                if not ok and recall > e_recall:
                    best[(key, method)] = (ok, recall, cells)
                # for ok rows keep the first (cheapest L) — rows are L-ascending
    out_rows = ["\t".join(header)]
    for (_key, _method), (_ok, _recall, cells) in sorted(best.items()):
        out_rows.append("\t".join(cells))
    return (
        fenced(out_rows)
        + "\n_One row per (workload, method): the cheapest sweep point reaching "
        + "recall ≥ 0.9, or the best recall achieved. Full series in "
        + f"results/{name}.tsv._"
    )


SECTIONS = {
    "FIG01": lambda: full("fig01_bsf_race"),
    "FIG04": lambda: full("fig04_complexity"),
    "FIG05": lambda: high_recall_slice("fig05_nd", 4, 2),
    "TABLE1": lambda: full("table1_pruning"),
    "FIG06": lambda: full("fig06_ss"),
    "TABLE2": lambda: full("table2_ss_indexing"),
    "FIG07": lambda: full("fig07_index_time"),
    "FIG08": lambda: full("fig08_index_memory", limit=16),
    "FIG09": lambda: full("fig09_index_size", limit=16),
    "FIG10": lambda: full("fig10_query_memory"),
    "FIG11": lambda: full("fig11_beam_width"),
    "FIG12": lambda: high_recall_slice("fig12_search_1m", 4, 2),
    "FIG13": lambda: high_recall_slice("fig13_search_25g", 4, 2)
    + "\n\nPower-law distributions (13e/13f):\n\n"
    + high_recall_slice("fig13ef_powerlaw", 4, 2),
    "FIG14": lambda: high_recall_slice("fig14_search_100g", 4, 2),
    "FIG15": lambda: high_recall_slice("fig15_hardness", 3, 1),
    "FIG16": lambda: high_recall_slice("fig16_search_1b", 2, 0),
    "FIG17": lambda: full("fig17_impl_opt"),
    "FIG18": lambda: full("fig18_recommend"),
    "TABLE3": lambda: full("table3_summary"),
    "EXT_SS": lambda: full("ext_adaptive_ss", limit=24),
    "EXT_IEH": lambda: high_recall_slice("ext_ieh_check", 3, 0),
    "EXT_HVS": lambda: high_recall_slice("ext_hvs_seeds", 3, 0),
    "EXT_QPS": lambda: full("ext_throughput"),
}


def main():
    text = DOC.read_text()
    for marker, render in SECTIONS.items():
        body = render()
        block = f"<!-- {marker} -->\n{body}\n<!-- /{marker} -->"
        # Replace either a bare marker or a previously injected block.
        injected = re.compile(
            rf"<!-- {marker} -->.*?<!-- /{marker} -->", re.DOTALL
        )
        if injected.search(text):
            text = injected.sub(block, text)
        else:
            text = text.replace(f"<!-- {marker} -->", block)
    DOC.write_text(text)
    print(f"updated {DOC}")


if __name__ == "__main__":
    sys.exit(main())
