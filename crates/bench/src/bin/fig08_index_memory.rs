//! Figure 8: peak memory during index construction (Deep).
//!
//! The paper reads VmPeak from /proc; we report both the process VmPeak
//! delta around each build (coarse — allocator high-water marks persist)
//! and the exact structural bytes, which are the reproducible series.
//!
//! Paper shape: EFANNA/KGraph (and hence NSG/SSG/DPG) and HCNNG have
//! outsized construction footprints; ELPIS is the leanest at scale
//! (smaller M/beam per leaf); HNSW pays for its contiguous slot layout.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig08_index_memory
//! ```

use gass_bench::{results_dir, small_tiers};
use gass_data::DatasetKind;
use gass_eval::{fmt_bytes, vm_peak_bytes, Table};
use gass_graphs::{build_method, MethodKind};

fn main() {
    let mut table = Table::new(vec![
        "tier",
        "method",
        "raw_data",
        "graph_bytes",
        "aux_bytes",
        "total_structural",
        "vm_peak_after",
    ]);

    for tier in small_tiers() {
        let base = DatasetKind::Deep.generate_base(tier.n, 3);
        let raw = base.heap_bytes();
        for kind in MethodKind::all_sota() {
            let built = build_method(kind, base.clone(), 5);
            let s = built.index.stats();
            table.row(vec![
                tier.label.to_string(),
                kind.name(),
                fmt_bytes(raw),
                fmt_bytes(s.graph_bytes),
                fmt_bytes(s.aux_bytes),
                fmt_bytes(raw + s.graph_bytes + s.aux_bytes),
                vm_peak_bytes().map_or("n/a".into(), fmt_bytes),
            ]);
            eprintln!("done: {} {}", tier.label, kind.name());
        }
    }
    table.emit(&results_dir(), "fig08_index_memory").expect("write results");
    println!(
        "Read as Fig. 8: total_structural per method (raw data included, \
         per the paper's convention). ELPIS's aux includes its leaf-local \
         vector copies; EFANNA-derived methods carry their forest."
    );
}
