//! The workspace's single k-means implementation.
//!
//! Three consumers share these loops, each with a different contract that
//! this module preserves exactly:
//!
//! * [`kmeans`] — Lloyd's over an id subset of a [`VectorStore`]
//!   (`gass-trees` re-exports it for BKT seed selection); every point ↔
//!   centroid distance is counted through the provided [`DistCounter`] so
//!   clustering cost shows up in construction accounting.
//! * [`balanced_kmeans`] — the capacity-capped greedy variant (Malinen &
//!   Fränti style) used by SPTAG-BKT and by [`crate::sharded::ShardedIndex`]
//!   partitioning: each cluster accepts at most `ceil(n/k)` points per
//!   round, points claim clusters in order of assignment confidence.
//! * [`maximin_lloyd`] — the fully deterministic (seed-free) variant behind
//!   PQ codebook training: maximin seeding from the data mean, fixed
//!   iteration count, strict-`<` assignment, f64 sums in row order, empty
//!   clusters reseeded at the farthest assigned point. Bit-identical to the
//!   trainer PQ shipped with (guarded by the PQ proptests).

use crate::distance::{l2_sq, DistCounter};
use crate::store::VectorStore;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Result of a clustering run.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// `k` centroid vectors (row-major, `dim` floats each).
    pub centroids: Vec<Vec<f32>>,
    /// For each input id (parallel to the `ids` argument), the index of its
    /// assigned cluster.
    pub assignment: Vec<usize>,
}

impl Clustering {
    /// Groups the input ids by cluster.
    pub fn groups(&self, ids: &[u32]) -> Vec<Vec<u32>> {
        let k = self.centroids.len();
        let mut groups = vec![Vec::new(); k];
        for (pos, &c) in self.assignment.iter().enumerate() {
            groups[c].push(ids[pos]);
        }
        groups
    }
}

fn init_centroids(
    store: &VectorStore,
    ids: &[u32],
    k: usize,
    rng: &mut SmallRng,
) -> Vec<Vec<f32>> {
    // k-means++ style seeding, but with a fixed candidate sample to keep it
    // O(k·sample) rather than O(k·n).
    let mut picks: Vec<u32> = ids.to_vec();
    picks.shuffle(rng);
    picks.truncate(k.max(1));
    // If fewer ids than k, repeat.
    while picks.len() < k {
        picks.push(ids[rng.random_range(0..ids.len())]);
    }
    picks.iter().map(|&id| store.get(id).to_vec()).collect()
}

/// Standard Lloyd's k-means over `ids`, `iters` refinement rounds.
///
/// # Panics
/// Panics if `ids` is empty or `k == 0`.
pub fn kmeans(
    store: &VectorStore,
    ids: &[u32],
    k: usize,
    iters: usize,
    seed: u64,
    counter: &DistCounter,
) -> Clustering {
    assert!(!ids.is_empty(), "k-means over empty id set");
    assert!(k > 0, "k must be positive");
    let dim = store.dim();
    let k = k.min(ids.len());
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut centroids = init_centroids(store, ids, k, &mut rng);
    let mut assignment = vec![0usize; ids.len()];

    for _ in 0..iters.max(1) {
        // Assign.
        for (pos, &id) in ids.iter().enumerate() {
            let v = store.get(id);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, cent) in centroids.iter().enumerate() {
                counter.bump();
                let d = l2_sq(v, cent);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignment[pos] = best;
        }
        // Update.
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (pos, &id) in ids.iter().enumerate() {
            let c = assignment[pos];
            counts[c] += 1;
            for (s, x) in sums[c].iter_mut().zip(store.get(id)) {
                *s += *x as f64;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed empty cluster at a random point.
                let id = ids[rng.random_range(0..ids.len())];
                centroids[c] = store.get(id).to_vec();
            } else {
                for (dst, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *dst = (*s / counts[c] as f64) as f32;
                }
            }
        }
    }

    // Final assignment against the last centroid update.
    for (pos, &id) in ids.iter().enumerate() {
        let v = store.get(id);
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (c, cent) in centroids.iter().enumerate() {
            counter.bump();
            let d = l2_sq(v, cent);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        assignment[pos] = best;
    }

    Clustering { centroids, assignment }
}

/// Balanced k-means (Malinen & Fränti style, greedy approximation): like
/// Lloyd's, but each cluster accepts at most `ceil(n/k)` points per round.
/// Points are processed in order of assignment confidence (gap between
/// best and second-best centroid), so strongly attached points claim their
/// cluster first.
pub fn balanced_kmeans(
    store: &VectorStore,
    ids: &[u32],
    k: usize,
    iters: usize,
    seed: u64,
    counter: &DistCounter,
) -> Clustering {
    assert!(!ids.is_empty(), "balanced k-means over empty id set");
    assert!(k > 0, "k must be positive");
    let dim = store.dim();
    let k = k.min(ids.len());
    let cap = ids.len().div_ceil(k);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut centroids = init_centroids(store, ids, k, &mut rng);
    let mut assignment = vec![0usize; ids.len()];

    for _ in 0..iters.max(1) {
        balanced_assign_round(store, ids, &centroids, cap, counter, &mut assignment);
        // Update centroids.
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (pos, &id) in ids.iter().enumerate() {
            let c = assignment[pos];
            counts[c] += 1;
            for (s, x) in sums[c].iter_mut().zip(store.get(id)) {
                *s += *x as f64;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for (dst, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *dst = (*s / counts[c] as f64) as f32;
                }
            }
        }
    }

    Clustering { centroids, assignment }
}

/// One capacity-capped assignment round: every point ranks all centroids,
/// then points claim slots in descending confidence (gap between best and
/// second-best centroid), falling through to their next preference when a
/// cluster is full. Exposed so [`crate::sharded`] can run a final balanced
/// assignment over the full dataset against sample-trained centroids.
pub fn balanced_assign_round(
    store: &VectorStore,
    ids: &[u32],
    centroids: &[Vec<f32>],
    cap: usize,
    counter: &DistCounter,
    assignment: &mut [usize],
) {
    let k = centroids.len();
    // Compute all point->centroid distances and a confidence score:
    // (confidence, position, sorted (distance, centroid) preferences).
    type Pref = (f32, usize, Vec<(f32, usize)>);
    let mut prefs: Vec<Pref> = Vec::with_capacity(ids.len());
    for (pos, &id) in ids.iter().enumerate() {
        let v = store.get(id);
        let mut ds: Vec<(f32, usize)> = centroids
            .iter()
            .enumerate()
            .map(|(c, cent)| {
                counter.bump();
                (l2_sq(v, cent), c)
            })
            .collect();
        ds.sort_by(|a, b| a.0.total_cmp(&b.0));
        let confidence = if ds.len() > 1 { ds[1].0 - ds[0].0 } else { f32::INFINITY };
        prefs.push((confidence, pos, ds));
    }
    // Most-confident points assign first.
    prefs.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut loads = vec![0usize; k];
    for (_, pos, ds) in &prefs {
        let mut placed = false;
        for &(_, c) in ds {
            if loads[c] < cap {
                assignment[*pos] = c;
                loads[c] += 1;
                placed = true;
                break;
            }
        }
        debug_assert!(placed, "capacity sums to >= n, a slot must exist");
    }
}

/// Deterministic maximin-seeded Lloyd's over `train.len() / dsub` flat
/// row-major points of dimension `dsub` — the PQ codebook trainer's core.
///
/// Seeding starts from the point nearest the data mean (index tie-break),
/// then greedily adds the point farthest from every chosen centroid.
/// Assignment uses strict `<` (ties to the lowest centroid index), updates
/// use f64 sums in fixed row order, and empty clusters are reseeded at the
/// farthest assigned point not yet consumed. No RNG anywhere: the same
/// inputs always produce the same centroids.
///
/// Returns `ncent` centroids flattened (`ncent * dsub` floats).
///
/// # Panics
/// Panics if `train` is empty, `dsub == 0`, or `train.len()` is not a
/// multiple of `dsub`.
pub fn maximin_lloyd(train: &[f32], dsub: usize, ncent: usize, iters: usize) -> Vec<f32> {
    assert!(dsub > 0, "point dimension must be positive");
    assert!(!train.is_empty(), "maximin k-means over empty training set");
    assert!(train.len().is_multiple_of(dsub), "training data must be whole rows");
    let n = train.len() / dsub;
    let sub = |pos: usize| -> &[f32] { &train[pos * dsub..(pos + 1) * dsub] };
    // Maximin (farthest-point) seeding: start from the subvector mean's
    // nearest training point, then greedily add the point farthest from
    // every chosen centroid. Deterministic, and far better than uniform
    // index sampling on clustered data.
    let mut centroids: Vec<f32> = Vec::with_capacity(ncent * dsub);
    let mut mean = vec![0.0f64; dsub];
    for pos in 0..n {
        for (m, x) in mean.iter_mut().zip(sub(pos)) {
            *m += *x as f64;
        }
    }
    let mean: Vec<f32> = mean.iter().map(|m| (*m / n as f64) as f32).collect();
    let first = (0..n)
        .min_by(|&a, &b| l2_sq(sub(a), &mean).total_cmp(&l2_sq(sub(b), &mean)).then(a.cmp(&b)))
        .unwrap_or(0);
    centroids.extend_from_slice(sub(first));
    let mut seed_d: Vec<f32> = (0..n).map(|pos| l2_sq(sub(pos), &centroids[..dsub])).collect();
    for _ in 1..ncent {
        let far = seed_d
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(pos, _)| pos)
            .unwrap_or(0);
        let chosen: Vec<f32> = sub(far).to_vec();
        for (pos, d) in seed_d.iter_mut().enumerate() {
            *d = d.min(l2_sq(sub(pos), &chosen));
        }
        centroids.extend_from_slice(&chosen);
    }
    let mut assignment = vec![0usize; n];
    let mut assigned_d = vec![0.0f32; n];
    for _ in 0..iters {
        // Assign (strict `<`, so ties go to the lowest centroid index).
        for (pos, slot) in assignment.iter_mut().enumerate() {
            let v = sub(pos);
            let (mut best, mut best_d) = (0usize, f32::INFINITY);
            for c in 0..ncent {
                let d = l2_sq(v, &centroids[c * dsub..(c + 1) * dsub]);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            *slot = best;
            assigned_d[pos] = best_d;
        }
        // Update: f64 sums in fixed row order.
        let mut sums = vec![0.0f64; ncent * dsub];
        let mut counts = vec![0usize; ncent];
        for (pos, &c) in assignment.iter().enumerate() {
            counts[c] += 1;
            for (s, x) in sums[c * dsub..(c + 1) * dsub].iter_mut().zip(sub(pos)) {
                *s += *x as f64;
            }
        }
        for c in 0..ncent {
            if counts[c] == 0 {
                // Reseed at the farthest assigned point not yet consumed.
                let far = assigned_d
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
                    .map(|(pos, _)| pos)
                    .unwrap_or(0);
                assigned_d[far] = -1.0;
                centroids[c * dsub..(c + 1) * dsub].copy_from_slice(sub(far));
            } else {
                for (dst, s) in centroids[c * dsub..(c + 1) * dsub]
                    .iter_mut()
                    .zip(&sums[c * dsub..(c + 1) * dsub])
                {
                    *dst = (*s / counts[c] as f64) as f32;
                }
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> VectorStore {
        let mut s = VectorStore::new(2);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            s.push(&[rng.random_range(-0.1..0.1f32), rng.random_range(-0.1..0.1f32)]);
        }
        for _ in 0..20 {
            s.push(&[10.0 + rng.random_range(-0.1..0.1f32), rng.random_range(-0.1..0.1f32)]);
        }
        s
    }

    #[test]
    fn maximin_lloyd_is_deterministic() {
        let store = blobs();
        let flat = store.to_flat_vec();
        let a = maximin_lloyd(&flat, 2, 4, 10);
        let b = maximin_lloyd(&flat, 2, 4, 10);
        assert_eq!(a, b, "seed-free trainer must be bit-stable");
        assert_eq!(a.len(), 4 * 2);
    }

    #[test]
    fn maximin_lloyd_separates_blobs() {
        let store = blobs();
        let flat = store.to_flat_vec();
        let cents = maximin_lloyd(&flat, 2, 2, 10);
        // One centroid near each blob.
        let near_zero = cents.chunks(2).filter(|c| c[0].abs() < 1.0).count();
        let near_ten = cents.chunks(2).filter(|c| (c[0] - 10.0).abs() < 1.0).count();
        assert_eq!((near_zero, near_ten), (1, 1), "centroids: {cents:?}");
    }

    #[test]
    fn balanced_assign_round_respects_cap() {
        let store = blobs();
        let ids: Vec<u32> = (0..40).collect();
        let counter = DistCounter::new();
        // Both centroids inside the first blob: without the cap every
        // point would pile onto them 40/0; the cap forces a 20/20 split.
        let centroids = vec![vec![0.0, 0.0], vec![0.1, 0.0]];
        let mut assignment = vec![0usize; ids.len()];
        balanced_assign_round(&store, &ids, &centroids, 20, &counter, &mut assignment);
        let ones = assignment.iter().filter(|&&c| c == 1).count();
        assert_eq!(ones, 20);
        assert!(counter.get() >= 80, "routing distances must be counted");
    }
}
