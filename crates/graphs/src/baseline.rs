//! The paper's instrumented baseline: a plain Incremental-Insertion (II)
//! graph with pluggable Neighborhood Diversification and pluggable
//! query-time Seed Selection.
//!
//! Section 4.2 isolates ND by building this graph once per strategy
//! (nodes inserted sequentially; each node's candidates come from a beam
//! search over the partial graph; bi-directional edges; overflow re-pruned
//! with the same strategy). Section 4.3 isolates SS by querying the RND
//! variant of this same graph under different seed providers. This module
//! is that instrument.

use crate::common::{add_reverse_edges, add_reverse_edges_concurrent, BuildReport};
use gass_core::distance::{DistCounter, Space};
use gass_core::graph::{AdjacencyGraph, FlatGraph, GraphView};
use gass_core::index::{AnnIndex, IndexStats, QueryParams, ScratchPool};
use gass_core::nd::NdStrategy;
use gass_core::par::ConcurrentAdjacency;
use gass_core::reorder::{ReorderStrategy, ServingState};
use gass_core::search::{beam_search, beam_search_frozen, SearchResult, SearchScratch};
use gass_core::seed::{RandomSeeds, SeedProvider, StaticSeeds};
use gass_core::store::VectorStore;

/// Parallel batches are capped at 1/8 of the already-built prefix (see
/// `gass_core::bounded_prefix_batches`): bounding how much of the graph a
/// batch is blind to keeps recall within noise of the serial build.
const BATCH_FRAC: usize = 8;

/// Construction parameters for the baseline II graph.
#[derive(Clone, Copy, Debug)]
pub struct IiParams {
    /// Maximum out-degree `R` (the paper's ND experiments use 60 at scale;
    /// scale down with dataset size).
    pub max_degree: usize,
    /// Construction beam width `L` (the paper uses 800 at scale).
    pub beam_width: usize,
    /// Diversification strategy applied to candidate lists and overflowing
    /// reverse lists.
    pub nd: NdStrategy,
    /// Seeds per insertion search: how many random already-inserted nodes
    /// warm each construction beam search (the **KS** construction
    /// strategy; Table 2's alternative is the SN-based HNSW).
    pub build_seeds: usize,
    /// RNG seed.
    pub seed: u64,
    /// Construction worker threads (0 = all available cores). At `1` the
    /// build is the exact sequential insertion. Above 1, prefix-doubling
    /// batches insert concurrently: per-batch seed draws stay serial (the
    /// seeder RNG is stateful), searches run in parallel against the
    /// frozen prefix, edges apply under striped locks.
    pub threads: usize,
}

impl IiParams {
    /// Sensible small-scale defaults: `R=24`, `L=96`, RND, 8 build seeds.
    pub fn small(nd: NdStrategy) -> Self {
        Self { max_degree: 24, beam_width: 96, nd, build_seeds: 8, seed: 42, threads: 1 }
    }
}

/// Draws this insertion's construction seeds: entry 0 plus `build_seeds`
/// random nodes folded into the inserted prefix `[0, id)`. Consumes the
/// seeder's RNG, so callers must invoke it in id order.
fn insertion_seeds(
    seeder: &RandomSeeds,
    space: Space<'_>,
    store: &VectorStore,
    build_seeds: usize,
    id: u32,
) -> Vec<u32> {
    let mut seed_buf = vec![0u32];
    let mut raw = Vec::new();
    seeder.seeds(space, store.get(id), build_seeds, &mut raw);
    seed_buf.extend(raw.into_iter().map(|s| s % id));
    seed_buf.sort_unstable();
    seed_buf.dedup();
    seed_buf
}

/// A built baseline II graph.
pub struct IiGraph {
    store: VectorStore,
    graph: FlatGraph,
    serving: ServingState,
    params: IiParams,
    default_seeds: Box<dyn SeedProvider>,
    scratch: ScratchPool,
    build: BuildReport,
    label: String,
}

impl IiGraph {
    /// Builds the graph by sequential insertion. Construction distance
    /// evaluations are counted into an internal counter reported via
    /// [`Self::build_report`].
    pub fn build(store: VectorStore, params: IiParams) -> Self {
        assert!(store.len() >= 2, "need at least two vectors");
        assert!(params.max_degree >= 1 && params.beam_width >= 1);
        let counter = DistCounter::new();
        let start = std::time::Instant::now();
        let n = store.len();
        let threads = gass_core::effective_threads(params.threads.max(1));
        let graph = {
            let space = Space::new(&store, &counter);
            let build_seeder = RandomSeeds::new(n, params.seed ^ 0x5eed);
            let mut scratch = SearchScratch::new(n, params.beam_width);
            // Serial path inserts everything; the parallel path only the
            // seed prefix, then continues in prefix-doubling batches.
            let serial_end = if threads <= 1 {
                n
            } else {
                gass_core::bounded_prefix_batches(
                    params.beam_width.max(64).min(n),
                    BATCH_FRAC,
                    n,
                )
                .first()
                .map_or(n, |b| b.start)
            };
            let mut graph = AdjacencyGraph::with_degree_hint(n, params.max_degree + 1);
            for id in 1..serial_end as u32 {
                // Seeds among the already inserted prefix [0, id).
                let seed_buf =
                    insertion_seeds(&build_seeder, space, &store, params.build_seeds, id);
                let res = beam_search(
                    &graph,
                    space,
                    store.get(id),
                    &seed_buf,
                    params.beam_width,
                    params.beam_width,
                    &mut scratch,
                );
                let selected =
                    params.nd.diversify(space, id, &res.neighbors, params.max_degree);
                graph.set_neighbors(id, selected.iter().map(|s| s.id).collect());
                add_reverse_edges(
                    space,
                    &mut graph,
                    id,
                    &selected,
                    params.max_degree,
                    params.nd,
                );
            }
            if threads <= 1 {
                graph
            } else {
                let batches = gass_core::bounded_prefix_batches(
                    params.beam_width.max(64).min(n),
                    BATCH_FRAC,
                    n,
                );
                let conc = ConcurrentAdjacency::from_adjacency(graph);
                for batch in batches {
                    // Seed draws stay serial, in id order: the seeder RNG
                    // is stateful and its stream must match the serial
                    // build's draw order.
                    let seeds: Vec<Vec<u32>> = batch
                        .clone()
                        .map(|id| {
                            insertion_seeds(
                                &build_seeder,
                                space,
                                &store,
                                params.build_seeds,
                                id as u32,
                            )
                        })
                        .collect();
                    // Phase A: read-only searches against the frozen prefix.
                    let prepared: Vec<(u32, Vec<gass_core::Neighbor>)> =
                        gass_core::par_map_with(
                            threads,
                            batch.len(),
                            || SearchScratch::new(n, params.beam_width),
                            |scratch, i| {
                                let id = (batch.start + i) as u32;
                                let res = beam_search(
                                    &conc,
                                    space,
                                    store.get(id),
                                    &seeds[i],
                                    params.beam_width,
                                    params.beam_width,
                                    scratch,
                                );
                                let selected = params.nd.diversify(
                                    space,
                                    id,
                                    &res.neighbors,
                                    params.max_degree,
                                );
                                (id, selected)
                            },
                        );
                    // Phase B: apply edges under the stripe locks.
                    gass_core::par_for(threads, prepared.len(), |range| {
                        for (id, selected) in &prepared[range] {
                            conc.set_neighbors(*id, selected.iter().map(|s| s.id).collect());
                            add_reverse_edges_concurrent(
                                space,
                                &conc,
                                *id,
                                selected,
                                params.max_degree,
                                params.nd,
                            );
                        }
                    });
                }
                conc.freeze()
            }
        };
        let build =
            BuildReport { seconds: start.elapsed().as_secs_f64(), dist_calcs: counter.get() };
        let flat = FlatGraph::from_adjacency(&graph, Some(params.max_degree));
        let default_seeds: Box<dyn SeedProvider> =
            Box::new(RandomSeeds::new(n, params.seed ^ 0xbeef));
        let label = format!("II+{}", params.nd.label());
        Self {
            store,
            graph: flat,
            params,
            default_seeds,
            serving: ServingState::new(),
            scratch: ScratchPool::new(),
            build,
            label,
        }
    }

    /// Replaces the default query-time seed provider (the SS experiments
    /// swap SN/KD/MD/SF/KS onto the same graph).
    pub fn set_seed_provider(&mut self, provider: Box<dyn SeedProvider>) {
        self.default_seeds = provider;
    }

    /// Searches using an explicit seed provider, leaving the default
    /// untouched.
    pub fn search_with(
        &self,
        provider: &dyn SeedProvider,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        let space =
            Space::new(&self.store, counter).with_quant(self.serving.quant_view(params));
        let mut seeds = Vec::new();
        provider.seeds(space, query, params.seed_count, &mut seeds);
        let res = self.scratch.with(self.store.len(), params.beam_width, |scratch| {
            beam_search_frozen(
                &self.graph,
                self.serving.csr(),
                space,
                query,
                &seeds,
                params.k,
                params.beam_width,
                scratch,
                params.termination(),
            )
        });
        self.serving.finish(res)
    }

    /// Construction cost report.
    pub fn build_report(&self) -> BuildReport {
        self.build
    }

    /// The frozen graph (for ablation and inspection).
    pub fn graph(&self) -> &FlatGraph {
        &self.graph
    }

    /// The vector store.
    pub fn store(&self) -> &VectorStore {
        &self.store
    }

    /// Construction parameters.
    pub fn params(&self) -> &IiParams {
        &self.params
    }

    /// A provider that always seeds at a fixed entry (used by tests).
    pub fn entry_seeds(&self) -> StaticSeeds {
        StaticSeeds::new(vec![0])
    }
}

impl AnnIndex for IiGraph {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn num_vectors(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        self.search_with(self.default_seeds.as_ref(), query, params, counter)
    }

    fn freeze(&mut self) {
        self.serving.freeze(&self.graph);
    }

    fn is_frozen(&self) -> bool {
        self.serving.is_frozen()
    }

    fn quantize(&mut self, spec: gass_core::CodecSpec) {
        self.serving.quantize(&self.store, spec);
    }

    fn is_quantized(&self) -> bool {
        self.serving.is_quantized()
    }

    fn reorder(&mut self, strategy: ReorderStrategy) {
        if let Some(map) = self.serving.reorder(&self.graph, &mut self.store, strategy, &[]) {
            self.default_seeds.reorder(&map);
        }
    }

    fn is_reordered(&self) -> bool {
        self.serving.is_reordered()
    }

    fn reorder_strategy(&self) -> ReorderStrategy {
        self.serving.strategy()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            nodes: self.graph.num_nodes(),
            edges: self.graph.num_edges(),
            avg_degree: self.graph.avg_degree(),
            max_degree: self.graph.max_degree(),
            graph_bytes: self.graph.heap_bytes() + self.serving.graph_bytes(),
            aux_bytes: self.serving.aux_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_data::ground_truth::ground_truth;
    use gass_data::synth::deep_like;

    fn recall_of(
        index: &dyn AnnIndex,
        base: &VectorStore,
        queries: &VectorStore,
        l: usize,
    ) -> f64 {
        let k = 10;
        let gt = ground_truth(base, queries, k);
        let counter = DistCounter::new();
        let params = QueryParams::new(k, l).with_seed_count(8);
        let mut hit = 0usize;
        for (qi, row) in gt.iter().enumerate() {
            let res = index.search(queries.get(qi as u32), &params, &counter);
            hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
        }
        hit as f64 / (gt.len() * k) as f64
    }

    #[test]
    fn rnd_baseline_achieves_high_recall() {
        let base = deep_like(600, 1);
        let queries = deep_like(20, 2);
        let g = IiGraph::build(base.clone(), IiParams::small(NdStrategy::Rnd));
        let r = recall_of(&g, &base, &queries, 64);
        assert!(r > 0.9, "II+RND recall too low: {r}");
        assert!(g.build_report().dist_calcs > 0);
        assert_eq!(g.name(), "II+RND");
    }

    #[test]
    fn degree_bound_holds() {
        let base = deep_like(300, 3);
        let g = IiGraph::build(base, IiParams::small(NdStrategy::Rnd));
        assert!(g.graph().max_degree() <= g.params().max_degree);
        assert!(g.stats().edges > 0);
    }

    #[test]
    fn rnd_sparsifies_without_losing_recall() {
        // Structural half of the Figure-5 claim that is scale-robust: RND
        // keeps strictly fewer edges than NoND on the same insertion
        // sequence, yet matches its recall at a generous beam width. (The
        // behavioural half — NoND needing more distance calls per unit
        // recall — emerges with dataset size and is measured by the
        // fig05_nd harness at release scale.)
        let base = deep_like(500, 4);
        let queries = deep_like(15, 5);
        let rnd = IiGraph::build(base.clone(), IiParams::small(NdStrategy::Rnd));
        let nond = IiGraph::build(base.clone(), IiParams::small(NdStrategy::NoNd));
        assert!(
            rnd.stats().edges < nond.stats().edges,
            "RND ({}) should keep fewer edges than NoND ({})",
            rnd.stats().edges,
            nond.stats().edges
        );
        let r_rnd = recall_of(&rnd, &base, &queries, 80);
        let r_nond = recall_of(&nond, &base, &queries, 80);
        assert!(r_rnd + 0.03 >= r_nond, "RND recall {r_rnd} fell below NoND {r_nond}");
        assert!(r_rnd > 0.9, "RND recall too low: {r_rnd}");
    }

    #[test]
    fn swapping_seed_provider_changes_behavior() {
        let base = deep_like(300, 6);
        let mut g = IiGraph::build(base.clone(), IiParams::small(NdStrategy::Rnd));
        let counter = DistCounter::new();
        let params = QueryParams::new(5, 32);
        let q = base.get(17);
        let default_res = g.search(q, &params, &counter);
        g.set_seed_provider(Box::new(StaticSeeds::new(vec![0])));
        let fixed_res = g.search(q, &params, &counter);
        // Both should find the exact point (it is in the dataset).
        assert_eq!(default_res.neighbors[0].id, 17);
        assert_eq!(fixed_res.neighbors[0].id, 17);
    }

    #[test]
    fn search_with_medoid_provider() {
        let base = deep_like(200, 8);
        let g = IiGraph::build(base.clone(), IiParams::small(NdStrategy::Rnd));
        let counter = DistCounter::new();
        let space = Space::new(g.store(), &counter);
        let md = gass_core::seed::MedoidSeed::compute(space);
        let res = g.search_with(&md, base.get(3), &QueryParams::new(3, 32), &counter);
        assert_eq!(res.neighbors[0].id, 3);
    }
}
