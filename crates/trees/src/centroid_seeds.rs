//! A data-adaptive seed-selection strategy — the extension the paper's
//! discussion calls for ("more effective and data-adaptive seed selection
//! strategies should be developed").
//!
//! **CS (Centroid Seeds)**: cluster the dataset once with k-means (the
//! number of centroids adapts to the dataset size as `c = ⌈√n⌉`, capped);
//! at query time, rank centroids by distance to the query and seed the
//! beam search with stored members nearest to the best centroids. This
//! costs `c` counted distance evaluations per query — adaptive to dataset
//! *distribution* (centroids follow density), unlike KS (uniform) or SF
//! (static), and far cheaper to build than SN's stacked graphs.

use crate::kmeans::kmeans;
use gass_core::distance::{l2_sq, Space};
use gass_core::reorder::IdRemap;
use gass_core::seed::SeedProvider;

/// Data-adaptive centroid-based seed provider.
#[derive(Clone, Debug)]
pub struct CentroidSeeds {
    centroids: Vec<Vec<f32>>,
    /// For each centroid, its member ids sorted by distance to the
    /// centroid (closest first).
    members: Vec<Vec<u32>>,
}

impl CentroidSeeds {
    /// Builds the structure over `space`'s store. `max_centroids` caps the
    /// adaptive `⌈√n⌉` choice (0 = uncapped).
    pub fn build(space: Space<'_>, max_centroids: usize, seed: u64) -> Self {
        let n = space.len();
        assert!(n > 0, "centroid seeds over empty store");
        let mut c = (n as f64).sqrt().ceil() as usize;
        if max_centroids > 0 {
            c = c.min(max_centroids);
        }
        c = c.clamp(1, n);
        let ids: Vec<u32> = (0..n as u32).collect();
        let clustering = kmeans(space, &ids, c, 6, seed);
        let mut members = clustering.groups(&ids);
        // Sort members by proximity to their centroid so the first few are
        // the most representative seeds.
        for (ci, group) in members.iter_mut().enumerate() {
            let centroid = &clustering.centroids[ci];
            group.sort_by(|&a, &b| {
                l2_sq(space.store().get(a), centroid)
                    .total_cmp(&l2_sq(space.store().get(b), centroid))
            });
        }
        Self { centroids: clustering.centroids, members }
    }

    /// Number of centroids.
    pub fn num_centroids(&self) -> usize {
        self.centroids.len()
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        let c: usize =
            self.centroids.iter().map(|v| v.capacity() * std::mem::size_of::<f32>()).sum();
        let m: usize =
            self.members.iter().map(|v| v.capacity() * std::mem::size_of::<u32>()).sum();
        c + m
    }
}

impl SeedProvider for CentroidSeeds {
    fn seeds(&self, space: Space<'_>, query: &[f32], count: usize, out: &mut Vec<u32>) {
        let want = count.max(1);
        // Rank centroids by counted distance to the query.
        let mut ranked: Vec<(f32, usize)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(ci, c)| {
                space.counter().bump();
                (l2_sq(query, c), ci)
            })
            .collect();
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Fill from the best centroid's most representative members first,
        // spilling into the next-ranked centroids only when needed — seeds
        // stay concentrated in the query's region.
        for &(_, ci) in &ranked {
            for &id in &self.members[ci] {
                out.push(id);
                if out.len() >= want {
                    return;
                }
            }
        }
        if out.is_empty() {
            // All nearby centroids empty (degenerate clustering): any
            // member works.
            if let Some(first) = self.members.iter().find_map(|m| m.first().copied()) {
                out.push(first);
            }
        }
    }

    fn label(&self) -> &'static str {
        "CS"
    }

    fn reorder(&mut self, map: &IdRemap) {
        // Member lists are ordered by proximity to their centroid — a
        // property of the vectors, not the labels — so an in-place id
        // remap preserves the emission order exactly.
        for group in &mut self.members {
            for id in group.iter_mut() {
                *id = map.to_new(*id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::distance::DistCounter;
    use gass_core::store::VectorStore;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn blobs(seed: u64) -> VectorStore {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = VectorStore::new(4);
        for c in 0..5 {
            let center = c as f32 * 8.0;
            for _ in 0..40 {
                let v: Vec<f32> =
                    (0..4).map(|_| center + rng.random_range(-0.4..0.4f32)).collect();
                s.push(&v);
            }
        }
        s
    }

    #[test]
    fn adapts_centroid_count_to_n() {
        let store = blobs(1);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let cs = CentroidSeeds::build(space, 0, 2);
        // sqrt(200) ~ 15.
        assert!(cs.num_centroids() >= 10 && cs.num_centroids() <= 20);
        let capped = CentroidSeeds::build(space, 4, 2);
        assert_eq!(capped.num_centroids(), 4);
    }

    #[test]
    fn seeds_come_from_the_query_region() {
        let store = blobs(3);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let cs = CentroidSeeds::build(space, 0, 4);
        counter.reset();
        let mut out = Vec::new();
        // Query at blob 2's center (ids 80..120).
        cs.seeds(space, &[16.0, 16.0, 16.0, 16.0], 8, &mut out);
        assert!(!out.is_empty());
        let hits = out.iter().filter(|&&id| (80..120).contains(&id)).count();
        assert!(
            hits * 2 >= out.len(),
            "seeds should come from the home blob: {hits}/{}",
            out.len()
        );
        // Per-query cost = one distance per centroid (counted).
        assert_eq!(counter.get(), cs.num_centroids() as u64);
    }

    #[test]
    fn respects_requested_count() {
        let store = blobs(5);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let cs = CentroidSeeds::build(space, 0, 6);
        let mut out = Vec::new();
        cs.seeds(space, &[0.0; 4], 5, &mut out);
        assert!(out.len() >= 5);
        assert_eq!(cs.label(), "CS");
    }

    #[test]
    fn single_point_store_works() {
        let mut s = VectorStore::new(2);
        s.push(&[1.0, 1.0]);
        let counter = DistCounter::new();
        let space = Space::new(&s, &counter);
        let cs = CentroidSeeds::build(space, 0, 7);
        let mut out = Vec::new();
        cs.seeds(space, &[0.0, 0.0], 3, &mut out);
        assert_eq!(out[0], 0);
    }
}
