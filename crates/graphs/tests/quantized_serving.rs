//! Integration contract of compressed serving on a 10K dataset, walked
//! down the whole codec ladder (SQ8 → SQ4 → PQ on one built graph): with
//! a rerank factor >= 2, recall@10 stays within one point of the
//! full-precision path, while the `DistCounter` split shows the code
//! evaluations doing the bulk of the work and the `f32` evaluations
//! reduced to the exact rerank (plus the HNSW hierarchy descent, which
//! stays at full precision).

use gass_core::index::{AnnIndex, QueryParams};
use gass_core::store::VectorStore;
use gass_core::DistCounter;
use gass_core::Neighbor;
use gass_data::ground_truth::ground_truth;
use gass_data::synth::deep_like;
use gass_graphs::{HnswIndex, HnswParams};

const N: usize = 10_000;
const K: usize = 10;

fn recall_at_10(
    index: &HnswIndex,
    queries: &VectorStore,
    truth: &[Vec<Neighbor>],
    params: &QueryParams,
    counter: &DistCounter,
) -> f64 {
    let mut hit = 0;
    for (qi, row) in truth.iter().enumerate() {
        let res = index.search(queries.get(qi as u32), params, counter);
        hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
    }
    hit as f64 / (K * truth.len()) as f64
}

#[test]
fn quantized_recall_within_one_point_on_10k() {
    let base = deep_like(N, 71);
    let queries = deep_like(50, 72);
    let truth = ground_truth(&base, &queries, K);
    let mut index =
        HnswIndex::build(base, HnswParams { m: 12, ef_construction: 96, seed: 7, threads: 0 });
    index.freeze();
    // Honor the CI reorder leg: this test bypasses the registry, so the
    // forced relabeling is applied by hand. Results report original ids,
    // so every assertion below is strategy-invariant.
    if let Some(strategy) = gass_core::reorder_forced() {
        index.reorder(strategy);
    }
    let params = QueryParams::new(K, 128).with_seed_count(8);

    // Full-precision baseline on the exact same graph.
    let full_counter = DistCounter::new();
    let full = recall_at_10(&index, &queries, &truth, &params, &full_counter);
    assert_eq!(full_counter.get_u8(), 0, "unquantized serving must not touch u8 codes");
    assert!(full > 0.9, "full-precision recall implausibly low: {full}");

    // Walk the ladder on the same built graph: `quantize` re-encodes when
    // the requested codec (family or PQ geometry) changes. The rerank
    // pool scales with the code rate — the affine codecs (8 and 4
    // bits/dim) recover with a 4x pool, while PQ at 2 bits/dim (m = dim/2,
    // 16 centroids per 2-dim subquantizer) needs a 16x pool to pull the
    // true top 10 back from the coarser code ranking.
    let dim = queries.dim();
    let ladder = [
        (gass_core::CodecSpec::Sq8, 4usize),
        (gass_core::CodecSpec::Sq4, 4),
        (gass_core::CodecSpec::Pq { m: Some(dim / 2) }, 16),
    ];
    for (spec, rerank) in ladder {
        index.quantize(spec);
        assert!(index.is_quantized());
        let params = params.with_rerank_factor(rerank);
        let quant_counter = DistCounter::new();
        let quant = recall_at_10(&index, &queries, &truth, &params, &quant_counter);

        assert!(
            quant >= full - 0.01,
            "{spec} recall {quant} more than 1pt below full-precision {full}"
        );
        // Traversal ran on the codes; f32 work shrank to the rerank pool
        // and the hierarchy descent.
        assert!(
            quant_counter.get_u8() > quant_counter.get_f32(),
            "{spec}: code evaluations should dominate: u8={} f32={}",
            quant_counter.get_u8(),
            quant_counter.get_f32()
        );
        assert!(quant_counter.get_u8() > 0 && quant_counter.get_f32() > 0);
    }
}
