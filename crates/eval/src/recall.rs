//! Recall measurement and the accuracy/efficiency sweeps behind every
//! search-performance figure.

use gass_core::distance::DistCounter;
use gass_core::index::{AnnIndex, QueryParams};
use gass_core::neighbor::Neighbor;
use gass_core::store::VectorStore;

/// Fraction of the true `k` nearest neighbors present in `found`.
///
/// Ties at the k-th distance are treated generously (an answer at exactly
/// the k-th true distance counts), matching common benchmark practice.
pub fn recall_at_k(truth: &[Neighbor], found: &[Neighbor], k: usize) -> f64 {
    let k = k.min(truth.len());
    if k == 0 {
        return 1.0;
    }
    let kth = truth[k - 1].dist;
    let hits = found
        .iter()
        .take(k)
        .filter(|f| truth[..k].iter().any(|t| t.id == f.id) || f.dist <= kth)
        .count();
    hits as f64 / k as f64
}

/// One point of an accuracy/efficiency curve.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Beam width used.
    pub beam_width: usize,
    /// Mean recall@k across the query set.
    pub recall: f64,
    /// Total distance calculations across the query set.
    pub dist_calcs: u64,
    /// Total wall-clock seconds across the query set.
    pub seconds: f64,
    /// Total nodes expanded (hops).
    pub hops: usize,
}

/// Runs the query set at one beam width, returning mean recall and cost.
pub fn evaluate_at(
    index: &dyn AnnIndex,
    queries: &VectorStore,
    truth: &[Vec<Neighbor>],
    k: usize,
    beam_width: usize,
    seed_count: usize,
) -> SweepPoint {
    let params = QueryParams::new(k, beam_width).with_seed_count(seed_count);
    evaluate_params(index, queries, truth, &params)
}

/// [`evaluate_at`] with caller-built [`QueryParams`] (rerank factor,
/// seeding — anything beyond the beam width).
pub fn evaluate_params(
    index: &dyn AnnIndex,
    queries: &VectorStore,
    truth: &[Vec<Neighbor>],
    params: &QueryParams,
) -> SweepPoint {
    assert_eq!(queries.len(), truth.len(), "truth/queries length mismatch");
    let counter = DistCounter::new();
    let (k, beam_width) = (params.k, params.beam_width);
    let start = std::time::Instant::now();
    let mut recall_sum = 0.0;
    let mut hops = 0usize;
    for (qi, t) in truth.iter().enumerate() {
        let res = index.search(queries.get(qi as u32), params, &counter);
        recall_sum += recall_at_k(t, &res.neighbors, k);
        hops += res.stats.hops;
    }
    SweepPoint {
        beam_width,
        recall: recall_sum / truth.len().max(1) as f64,
        dist_calcs: counter.get(),
        seconds: start.elapsed().as_secs_f64(),
        hops,
    }
}

/// Sweeps beam widths producing a recall-vs-cost curve (the x/y series of
/// Figures 5, 12, 13, 14, 15, 16).
pub fn sweep(
    index: &dyn AnnIndex,
    queries: &VectorStore,
    truth: &[Vec<Neighbor>],
    k: usize,
    beam_widths: &[usize],
    seed_count: usize,
) -> Vec<SweepPoint> {
    beam_widths.iter().map(|&l| evaluate_at(index, queries, truth, k, l, seed_count)).collect()
}

/// Smallest beam width (from `candidates`) reaching `target` mean recall,
/// with its cost — the paper's "distance calcs to reach 0.99" metric
/// (Figure 6) and "beam width needed" metric (Figure 11). `None` if the
/// target is never reached.
pub fn cost_to_reach(
    index: &dyn AnnIndex,
    queries: &VectorStore,
    truth: &[Vec<Neighbor>],
    k: usize,
    target: f64,
    candidates: &[usize],
    seed_count: usize,
) -> Option<SweepPoint> {
    for &l in candidates {
        let p = evaluate_at(index, queries, truth, k, l, seed_count);
        if p.recall >= target {
            return Some(p);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::index::SerialScanIndex;
    use gass_data::ground_truth::ground_truth;
    use gass_data::synth::deep_like;

    fn n(id: u32, d: f32) -> Neighbor {
        Neighbor::new(id, d)
    }

    #[test]
    fn recall_counts_hits() {
        let truth = vec![n(1, 0.1), n(2, 0.2), n(3, 0.3)];
        let found = vec![n(1, 0.1), n(9, 0.35), n(3, 0.3)];
        assert!((recall_at_k(&truth, &found, 3) - 2.0 / 3.0).abs() < 1e-9);
        assert!((recall_at_k(&truth, &found, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recall_tolerates_distance_ties() {
        let truth = vec![n(1, 0.5), n(2, 0.5)];
        // Different id but identical distance to the k-th: counts.
        let found = vec![n(1, 0.5), n(7, 0.5)];
        assert_eq!(recall_at_k(&truth, &found, 2), 1.0);
    }

    #[test]
    fn serial_scan_has_perfect_recall() {
        let base = deep_like(150, 1);
        let queries = deep_like(8, 2);
        let truth = ground_truth(&base, &queries, 5);
        let idx = SerialScanIndex::new(base);
        let p = evaluate_at(&idx, &queries, &truth, 5, 5, 1);
        assert_eq!(p.recall, 1.0);
        assert_eq!(p.dist_calcs, 8 * 150);
    }

    #[test]
    fn sweep_is_monotone_in_cost() {
        let base = deep_like(150, 3);
        let queries = deep_like(5, 4);
        let truth = ground_truth(&base, &queries, 5);
        let idx = SerialScanIndex::new(base);
        let pts = sweep(&idx, &queries, &truth, 5, &[5, 10, 20], 1);
        assert_eq!(pts.len(), 3);
        // Serial scan cost is constant; recall stays 1.0.
        assert!(pts.iter().all(|p| p.recall == 1.0));
    }

    #[test]
    fn cost_to_reach_finds_threshold() {
        let base = deep_like(100, 5);
        let queries = deep_like(4, 6);
        let truth = ground_truth(&base, &queries, 3);
        let idx = SerialScanIndex::new(base);
        let p = cost_to_reach(&idx, &queries, &truth, 3, 0.99, &[3, 6], 1).unwrap();
        assert_eq!(p.beam_width, 3);
        assert!(cost_to_reach(&idx, &queries, &truth, 3, 1.01, &[3], 1).is_none());
    }
}
