//! Property-based tests (proptest) over the graph-reordering invariants:
//! every strategy's permutation is a bijection; relabeling the serving
//! state is invisible to `search()` (same ids, same distances, same
//! counted evaluations) on random graphs; and reordering commutes with
//! quantization.

use gass_core::{
    compute_permutation, AdjacencyGraph, AnnIndex, CodecSpec, DistCounter, FlatGraph,
    PrebuiltIndex, QueryParams, ReorderStrategy, StaticSeeds, VectorStore,
};
use proptest::prelude::*;

const DIM: usize = 6;

/// A random store plus a random directed graph over its ids: per node, a
/// few arbitrary out-neighbors (self-loops and duplicates included — the
/// permutation machinery must not care).
fn arb_store_and_graph() -> impl Strategy<Value = (Vec<Vec<f32>>, Vec<Vec<u32>>)> {
    (4usize..40).prop_flat_map(|n| {
        let points =
            prop::collection::vec(prop::collection::vec(-10.0f32..10.0, DIM..=DIM), n..=n);
        let edges = prop::collection::vec(prop::collection::vec(0..n as u32, 0..6), n..=n);
        (points, edges)
    })
}

fn assemble(points: &[Vec<f32>], edges: &[Vec<u32>]) -> (VectorStore, FlatGraph) {
    let mut store = VectorStore::new(DIM);
    for p in points {
        store.push(p);
    }
    let mut adj = AdjacencyGraph::new(points.len());
    for (u, list) in edges.iter().enumerate() {
        for &v in list {
            adj.add_edge(u as u32, v);
        }
    }
    (store, FlatGraph::from_adjacency(&adj, None))
}

/// Serves the graph with deterministic static seeds so that two indexes
/// over the same data answer in lockstep regardless of labeling.
fn serve(store: &VectorStore, graph: &FlatGraph) -> PrebuiltIndex {
    let seeds: Vec<u32> = (0..store.len().min(3) as u32).collect();
    let mut index = PrebuiltIndex::new(
        store.clone(),
        graph.clone(),
        Box::new(StaticSeeds::new(seeds)),
        "prop",
    );
    index.align_store();
    index.freeze();
    index
}

fn search_all(
    index: &PrebuiltIndex,
    points: &[Vec<f32>],
) -> (Vec<Vec<gass_core::Neighbor>>, u64) {
    let counter = DistCounter::new();
    let params = QueryParams::new(3, 8).with_rerank_factor(2);
    let results = points.iter().map(|q| index.search(q, &params, &counter).neighbors).collect();
    (results, counter.get())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every strategy produces a bijective relabeling: `to_new` and
    /// `to_old` invert each other over the whole id range.
    #[test]
    fn permutations_are_bijections(sg in arb_store_and_graph()) {
        let (points, edges) = sg;
        let (_, graph) = assemble(&points, &edges);
        for strategy in ReorderStrategy::ALL {
            let map = compute_permutation(&graph, strategy, &[0]);
            for id in 0..points.len() as u32 {
                prop_assert_eq!(map.to_new(map.to_old(id)), id, "{}", strategy);
                prop_assert_eq!(map.to_old(map.to_new(id)), id, "{}", strategy);
            }
        }
    }

    /// Relabeling the serving state changes nothing observable: neighbor
    /// ids (original label space), distances, and counted evaluations all
    /// match the unreordered index, for every strategy, on arbitrary
    /// graphs — including disconnected and self-looped ones.
    #[test]
    fn search_is_invariant_under_reordering(sg in arb_store_and_graph()) {
        let (points, edges) = sg;
        let (store, graph) = assemble(&points, &edges);
        let baseline = serve(&store, &graph);
        let expected = search_all(&baseline, &points);
        for strategy in ReorderStrategy::ALL {
            let mut reordered = serve(&store, &graph);
            reordered.reorder(strategy);
            let got = search_all(&reordered, &points);
            prop_assert_eq!(&got, &expected, "{}", strategy);
        }
    }

    /// `reorder . quantize == quantize . reorder`, per codec. The
    /// reordered code rows are exactly the unreordered rows relabeled,
    /// for every codec. For the affine codecs (SQ8/SQ4) reordering is
    /// additionally observationally invisible and the two orders are
    /// *bitwise* interchangeable — the grid (per-dim min/max) is
    /// row-order-invariant, so quantizing after reordering yields the
    /// same codes row-for-row. PQ's legs are narrower by nature: its
    /// k-means training sums in row order (f64 rounding is
    /// order-sensitive), so the cross-order comparison lives at the unit
    /// level (`quant::pq` property-tests that `permute` equals
    /// re-encoding the permuted store under the same codebooks), and its
    /// integer LUT distances tie freely at these sizes, so pool
    /// composition at tie boundaries is label-dependent and search
    /// results are not compared bitwise.
    #[test]
    fn reorder_commutes_with_quantize(sg in arb_store_and_graph()) {
        let (points, edges) = sg;
        let (store, graph) = assemble(&points, &edges);
        for spec in CodecSpec::ALL {
            let mut baseline = serve(&store, &graph);
            baseline.quantize(spec);
            let expected = search_all(&baseline, &points);
            let q0 = baseline.quantized().unwrap();
            for strategy in ReorderStrategy::ALL {
                let mut quantize_first = serve(&store, &graph);
                quantize_first.quantize(spec);
                quantize_first.reorder(strategy);
                // Observational identity needs effectively tie-free code
                // distances: PQ's 16-entry integer LUT sums collide
                // freely at these sizes, and equal-distance candidates
                // at the pool margin resolve in label order.
                if !matches!(spec, CodecSpec::Pq { .. }) {
                    let a = search_all(&quantize_first, &points);
                    prop_assert_eq!(&a, &expected, "{} {}", spec, strategy);
                }
                // The reordered code rows are the baseline's, relabeled
                // through the exact map the serving state installed.
                let qa = quantize_first.quantized().unwrap();
                if let Some(map) = quantize_first.serving().remap() {
                    for id in 0..points.len() as u32 {
                        prop_assert_eq!(
                            qa.code_row(id), q0.code_row(map.to_old(id)),
                            "{} {} id {}", spec, strategy, id
                        );
                    }
                }
                if matches!(spec, CodecSpec::Pq { .. }) {
                    continue;
                }
                let mut reorder_first = serve(&store, &graph);
                reorder_first.reorder(strategy);
                reorder_first.quantize(spec);
                let b = search_all(&reorder_first, &points);
                prop_assert_eq!(&b, &expected, "{} {}", spec, strategy);
                let qb = reorder_first.quantized().unwrap();
                for id in 0..points.len() as u32 {
                    prop_assert_eq!(
                        qa.code_row(id), qb.code_row(id),
                        "{} {} id {}", spec, strategy, id
                    );
                }
            }
        }
    }
}
