//! Minimum spanning trees over point subsets — HCNNG's per-cluster graph
//! primitive.
//!
//! HCNNG repeatedly clusters the dataset, builds an MST inside every leaf
//! (a few hundred points), and merges the MST edges of all runs into one
//! graph. Leaf MSTs are small, so Prim's algorithm with dense `O(m²)`
//! distance evaluation is the right tool; every evaluation is counted.

use gass_core::distance::Space;

/// An undirected weighted edge between two stored vectors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MstEdge {
    /// First endpoint (dataset id).
    pub a: u32,
    /// Second endpoint (dataset id).
    pub b: u32,
    /// Squared Euclidean length.
    pub weight: f32,
}

/// Computes the MST of the complete Euclidean graph over `ids` using
/// Prim's algorithm. Returns `ids.len() - 1` edges (empty for fewer than
/// two points).
///
/// HCNNG additionally caps the *degree* of each vertex within a single
/// MST; pass the cap through `max_degree` (use `usize::MAX` to disable).
/// When a minimal edge would exceed the cap on either endpoint, the next
/// best admissible edge is chosen, as in the reference implementation.
pub fn prim_mst(space: Space<'_>, ids: &[u32], max_degree: usize) -> Vec<MstEdge> {
    let m = ids.len();
    if m < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![false; m];
    let mut degree = vec![0usize; m];
    // best[j] = (weight, tree vertex) of the cheapest admissible edge
    // connecting j to the tree.
    let mut best: Vec<(f32, usize)> = vec![(f32::INFINITY, usize::MAX); m];
    let mut edges = Vec::with_capacity(m - 1);

    in_tree[0] = true;
    for j in 1..m {
        best[j] = (space.dist(ids[0], ids[j]), 0);
    }

    for _ in 1..m {
        // Pick the closest out-of-tree vertex whose tree endpoint still has
        // degree budget.
        let mut pick = usize::MAX;
        let mut pick_w = f32::INFINITY;
        for j in 0..m {
            if !in_tree[j] && best[j].1 != usize::MAX && best[j].0 < pick_w {
                pick = j;
                pick_w = best[j].0;
            }
        }
        if pick == usize::MAX {
            // All candidate edges hit saturated endpoints: relax by
            // recomputing against any unsaturated tree vertex.
            for j in 0..m {
                if in_tree[j] {
                    continue;
                }
                best[j] = (f32::INFINITY, usize::MAX);
                for t in 0..m {
                    if in_tree[t] && degree[t] < max_degree {
                        let w = space.dist(ids[t], ids[j]);
                        if w < best[j].0 {
                            best[j] = (w, t);
                        }
                    }
                }
                if best[j].1 != usize::MAX && best[j].0 < pick_w {
                    pick = j;
                    pick_w = best[j].0;
                }
            }
            if pick == usize::MAX {
                // Degree cap makes the tree infeasible (cap too small);
                // fall back to ignoring the cap for this edge.
                for j in 0..m {
                    if in_tree[j] {
                        continue;
                    }
                    for t in 0..m {
                        if in_tree[t] {
                            let w = space.dist(ids[t], ids[j]);
                            if w < pick_w {
                                pick = j;
                                pick_w = w;
                                best[j] = (w, t);
                            }
                        }
                    }
                }
            }
        }
        let t = best[pick].1;
        edges.push(MstEdge { a: ids[t], b: ids[pick], weight: best[pick].0 });
        degree[t] += 1;
        degree[pick] += 1;
        in_tree[pick] = true;

        // Update candidate edges through the newly added vertex (only if it
        // still has budget).
        if degree[pick] < max_degree {
            for j in 0..m {
                if !in_tree[j] {
                    let w = space.dist(ids[pick], ids[j]);
                    if w < best[j].0 {
                        best[j] = (w, pick);
                    }
                }
            }
        }
        // Invalidate candidates pointing at a now-saturated vertex.
        if degree[t] >= max_degree {
            for j in 0..m {
                if !in_tree[j] && best[j].1 == t {
                    best[j] = (f32::INFINITY, usize::MAX);
                    for v in 0..m {
                        if in_tree[v] && degree[v] < max_degree {
                            let w = space.dist(ids[v], ids[j]);
                            if w < best[j].0 {
                                best[j] = (w, v);
                            }
                        }
                    }
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::distance::DistCounter;
    use gass_core::store::VectorStore;

    #[test]
    fn mst_of_line_is_the_chain() {
        let store = VectorStore::from_flat(1, vec![0.0, 1.0, 2.5, 4.5]);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let ids: Vec<u32> = (0..4).collect();
        let mut edges = prim_mst(space, &ids, usize::MAX);
        assert_eq!(edges.len(), 3);
        edges.sort_by(|x, y| x.weight.total_cmp(&y.weight));
        // Chain edges: (0,1)=1, (1,2)=2.25, (2,3)=4.
        assert!((edges[0].weight - 1.0).abs() < 1e-6);
        assert!((edges[1].weight - 2.25).abs() < 1e-6);
        assert!((edges[2].weight - 4.0).abs() < 1e-6);
    }

    #[test]
    fn mst_spans_all_vertices() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(4);
        let mut store = VectorStore::new(3);
        for _ in 0..60 {
            let v: Vec<f32> = (0..3).map(|_| rng.random_range(-1.0..1.0f32)).collect();
            store.push(&v);
        }
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let ids: Vec<u32> = (0..60).collect();
        let edges = prim_mst(space, &ids, usize::MAX);
        assert_eq!(edges.len(), 59);
        // Union-find connectivity check.
        let mut parent: Vec<usize> = (0..60).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for e in &edges {
            let (ra, rb) = (find(&mut parent, e.a as usize), find(&mut parent, e.b as usize));
            assert_ne!(ra, rb, "MST must not contain cycles");
            parent[ra] = rb;
        }
        let root = find(&mut parent, 0);
        for v in 0..60 {
            assert_eq!(find(&mut parent, v), root, "vertex {v} disconnected");
        }
    }

    #[test]
    fn degree_cap_respected_when_feasible() {
        // Star-shaped data would want a hub; with cap 3 the MST must
        // distribute degree.
        let mut store = VectorStore::new(2);
        store.push(&[0.0, 0.0]); // center
        for i in 0..8 {
            let ang = i as f32 * std::f32::consts::TAU / 8.0;
            store.push(&[ang.cos(), ang.sin()]);
        }
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let ids: Vec<u32> = (0..9).collect();
        let edges = prim_mst(space, &ids, 3);
        assert_eq!(edges.len(), 8);
        let mut degree = vec![0usize; 9];
        for e in &edges {
            degree[e.a as usize] += 1;
            degree[e.b as usize] += 1;
        }
        assert!(degree.iter().all(|&d| d <= 3), "degrees: {degree:?}");
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let store = VectorStore::from_flat(1, vec![1.0]);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        assert!(prim_mst(space, &[], usize::MAX).is_empty());
        assert!(prim_mst(space, &[0], usize::MAX).is_empty());
    }
}
