//! Adaptive early termination and per-query compute budgeting.
//!
//! A fixed beam width `L` is sized for the *hardest* queries, so the easy
//! majority keeps expanding candidates long after its top-`k` has
//! converged (the paper's Figure 11 beam sweep makes this visible: the
//! `L` needed for a target recall varies by an order of magnitude across
//! queries). A [`TerminationPolicy`] lets each query stop as soon as its
//! own convergence signal fires, and an optional hard `max_dists` budget
//! caps the worst case — the key query-time lever the authors' follow-up
//! work (*Toward Efficient and Scalable Design of In-Memory Graph-Based
//! Vector Search*) names for equal-recall throughput.
//!
//! All checks are **emission-time**: they run once per expansion, right
//! after the candidate buffer pops its best unexpanded entry, never per
//! distance evaluation. The hot loop (visited filter + 4-wide kernel)
//! is untouched, so [`TerminationPolicy::Fixed`] with no budget is
//! bit-identical to the pre-policy search by construction — the checks
//! reduce to one predictable branch per expansion.
//!
//! Because the traversal is deterministic, a terminated run's expansion
//! sequence is a *prefix* of the unterminated run's. Relaxing a policy
//! (larger `patience`, larger `eps`, larger `max_dists`) only lengthens
//! that prefix, and every expansion can only add candidates to the
//! buffer — which is why recall is monotone in each knob.

use crate::neighbor::SortedBuffer;
use std::str::FromStr;
use std::sync::OnceLock;

/// When a beam search stops expanding candidates.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum TerminationPolicy {
    /// Run until the candidate buffer stabilizes (every retained
    /// candidate expanded) — the paper's Algorithm 1, bit-identical to
    /// the pre-policy search.
    #[default]
    Fixed,
    /// Stop once `patience` consecutive expansions leave the result
    /// top-`k` (the buffer's leading `k` entries) unchanged. The cheap,
    /// robust signal: easy queries converge in a few hops and pay only
    /// `patience` extra expansions past convergence.
    Saturation {
        /// Consecutive non-improving expansions tolerated before stopping
        /// (clamped to at least 1).
        patience: usize,
    },
    /// Stop once the best *unexpanded* candidate is farther than
    /// `(1 + eps) ×` the current `k`-th result distance. The buffer is
    /// sorted and expansion is best-first, so when the next candidate is
    /// already outside the margin, everything after it is too.
    DistRatio {
        /// Relative margin over the `k`-th result distance (squared-L2
        /// space); `0.0` stops as soon as the frontier passes the k-th
        /// result.
        eps: f32,
    },
}

impl TerminationPolicy {
    /// Default `patience` when `saturation` is selected without a value.
    pub const DEFAULT_PATIENCE: usize = 8;
    /// Default `eps` when `distratio` is selected without a value.
    pub const DEFAULT_EPS: f32 = 0.2;
}

impl std::fmt::Display for TerminationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Fixed => write!(f, "fixed"),
            Self::Saturation { patience } => write!(f, "saturation:{patience}"),
            Self::DistRatio { eps } => write!(f, "distratio:{eps}"),
        }
    }
}

impl FromStr for TerminationPolicy {
    type Err = String;

    /// Parses `fixed`, `saturation[:patience]`, or `distratio[:eps]`
    /// (short forms `sat`/`ratio` accepted).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, arg) = match s.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (s, None),
        };
        match name {
            "fixed" => match arg {
                None => Ok(Self::Fixed),
                Some(_) => Err("`fixed` takes no argument".to_string()),
            },
            "saturation" | "sat" => {
                let patience = match arg {
                    None => Self::DEFAULT_PATIENCE,
                    Some(a) => a
                        .parse::<usize>()
                        .map_err(|_| format!("bad saturation patience `{a}`"))?,
                };
                if patience == 0 {
                    return Err("saturation patience must be at least 1".to_string());
                }
                Ok(Self::Saturation { patience })
            }
            "distratio" | "ratio" => {
                let eps = match arg {
                    None => Self::DEFAULT_EPS,
                    Some(a) => {
                        a.parse::<f32>().map_err(|_| format!("bad distratio eps `{a}`"))?
                    }
                };
                if !eps.is_finite() || eps < 0.0 {
                    return Err("distratio eps must be finite and >= 0".to_string());
                }
                Ok(Self::DistRatio { eps })
            }
            other => Err(format!(
                "unknown termination policy `{other}` \
                 (expected fixed | saturation[:patience] | distratio[:eps])"
            )),
        }
    }
}

/// The full per-query termination configuration: a policy plus an
/// optional hard compute budget.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Termination {
    /// When the traversal stops expanding.
    pub policy: TerminationPolicy,
    /// Hard cap on distance evaluations for the traversal (`0` =
    /// unlimited). Checked at emission time, so a search may overshoot
    /// by at most one expansion's neighbor list; the quantized exact
    /// rerank still runs after a budget stop (returned distances stay
    /// exact).
    pub max_dists: usize,
}

impl Termination {
    /// The pre-policy behavior: run to buffer stabilization, no budget.
    pub const FIXED: Termination =
        Termination { policy: TerminationPolicy::Fixed, max_dists: 0 };

    /// `true` when this configuration can never stop a search early —
    /// the traversal takes the exact pre-policy path.
    #[inline]
    pub fn is_fixed(&self) -> bool {
        matches!(self.policy, TerminationPolicy::Fixed) && self.max_dists == 0
    }
}

/// Per-search working state for a [`Termination`]: owns the saturation
/// fingerprint so the traversal only calls two inlineable hooks.
#[derive(Clone, Copy, Debug)]
pub struct TermState {
    term: Termination,
    k: usize,
    /// `(retained.min(k), k-th id, k-th dist bits)` after the last
    /// expansion — the top-`k` frontier fingerprint saturation watches.
    fingerprint: (usize, u32, u32),
    stale: usize,
    saturated: bool,
}

impl TermState {
    /// Fresh state for one search returning `k` results.
    pub fn new(term: Termination, k: usize) -> Self {
        Self { term, k: k.max(1), fingerprint: (usize::MAX, 0, 0), stale: 0, saturated: false }
    }

    /// Emission-time check: called right after `next_unexpanded()` pops
    /// the closest unexpanded candidate (distance `current_dist`) and
    /// before its neighbor list is touched. `evaluated` is the search's
    /// running evaluation count. Returns `true` to stop the traversal.
    #[inline]
    pub fn should_stop(
        &self,
        current_dist: f32,
        buffer: &SortedBuffer,
        evaluated: usize,
    ) -> bool {
        if self.term.is_fixed() {
            return false;
        }
        if self.term.max_dists > 0 && evaluated >= self.term.max_dists {
            return true;
        }
        match self.term.policy {
            TerminationPolicy::Fixed => false,
            TerminationPolicy::Saturation { .. } => self.saturated,
            TerminationPolicy::DistRatio { eps } => match buffer.kth(self.k) {
                // Best-first order: the popped candidate is the closest
                // unexpanded one, so once it falls outside the margin the
                // whole frontier has.
                Some(kth) => current_dist > (1.0 + eps) * kth.dist,
                None => false,
            },
        }
    }

    /// Post-expansion hook: called after every expansion's evaluations
    /// were inserted. Updates the saturation fingerprint; a no-op for
    /// every other policy.
    #[inline]
    pub fn note_expansion(&mut self, buffer: &SortedBuffer) {
        if let TerminationPolicy::Saturation { patience } = self.term.policy {
            let fp = match buffer.kth(self.k.min(buffer.len().max(1))) {
                Some(kth) => (buffer.len().min(self.k), kth.id, kth.dist.to_bits()),
                None => (0, 0, 0),
            };
            if fp == self.fingerprint {
                self.stale += 1;
                if self.stale >= patience.max(1) {
                    self.saturated = true;
                }
            } else {
                self.fingerprint = fp;
                self.stale = 0;
            }
        }
    }
}

/// `GASS_TERM` override, parsed once: forces a termination policy (and
/// optionally a budget via `GASS_MAX_DISTS`) onto every
/// [`crate::index::QueryParams`] built without an explicit policy, so
/// whole test suites and CI legs run the adaptive paths without flag
/// plumbing — the same pattern as `GASS_QUANT` / `GASS_REORDER`.
/// Unparsable values behave as unset.
pub fn term_forced() -> Option<Termination> {
    static FORCED: OnceLock<Option<Termination>> = OnceLock::new();
    *FORCED.get_or_init(|| {
        let policy = match std::env::var("GASS_TERM") {
            Ok(v) => v.parse::<TerminationPolicy>().ok()?,
            Err(_) => TerminationPolicy::Fixed,
        };
        let max_dists = std::env::var("GASS_MAX_DISTS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        let term = Termination { policy, max_dists };
        if term.is_fixed() && std::env::var("GASS_TERM").is_err() {
            None
        } else {
            Some(term)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::Neighbor;

    #[test]
    fn policy_parsing_roundtrips() {
        assert_eq!("fixed".parse::<TerminationPolicy>().unwrap(), TerminationPolicy::Fixed);
        assert_eq!(
            "saturation".parse::<TerminationPolicy>().unwrap(),
            TerminationPolicy::Saturation { patience: TerminationPolicy::DEFAULT_PATIENCE }
        );
        assert_eq!(
            "sat:3".parse::<TerminationPolicy>().unwrap(),
            TerminationPolicy::Saturation { patience: 3 }
        );
        assert_eq!(
            "distratio:0.5".parse::<TerminationPolicy>().unwrap(),
            TerminationPolicy::DistRatio { eps: 0.5 }
        );
        assert_eq!(
            "ratio".parse::<TerminationPolicy>().unwrap(),
            TerminationPolicy::DistRatio { eps: TerminationPolicy::DEFAULT_EPS }
        );
        for p in [
            TerminationPolicy::Fixed,
            TerminationPolicy::Saturation { patience: 5 },
            TerminationPolicy::DistRatio { eps: 0.25 },
        ] {
            assert_eq!(p.to_string().parse::<TerminationPolicy>().unwrap(), p);
        }
        assert!("sat:0".parse::<TerminationPolicy>().is_err());
        assert!("distratio:-1".parse::<TerminationPolicy>().is_err());
        assert!("bogus".parse::<TerminationPolicy>().is_err());
        assert!("fixed:3".parse::<TerminationPolicy>().is_err());
    }

    #[test]
    fn fixed_never_stops() {
        let state = TermState::new(Termination::FIXED, 3);
        let buffer = SortedBuffer::new(4);
        assert!(!state.should_stop(1e30, &buffer, usize::MAX - 1));
    }

    #[test]
    fn budget_stops_at_max_dists() {
        let term = Termination { policy: TerminationPolicy::Fixed, max_dists: 100 };
        assert!(!term.is_fixed());
        let state = TermState::new(term, 3);
        let buffer = SortedBuffer::new(4);
        assert!(!state.should_stop(0.0, &buffer, 99));
        assert!(state.should_stop(0.0, &buffer, 100));
    }

    #[test]
    fn dist_ratio_stops_outside_margin() {
        let term =
            Termination { policy: TerminationPolicy::DistRatio { eps: 0.5 }, max_dists: 0 };
        let state = TermState::new(term, 2);
        let mut buffer = SortedBuffer::new(4);
        buffer.insert(Neighbor::new(0, 1.0));
        // Fewer than k results: never stop.
        assert!(!state.should_stop(100.0, &buffer, 10));
        buffer.insert(Neighbor::new(1, 2.0));
        // k-th dist = 2.0, margin = 3.0.
        assert!(!state.should_stop(2.9, &buffer, 10));
        assert!(state.should_stop(3.1, &buffer, 10));
    }

    #[test]
    fn saturation_trips_after_patience_stale_expansions() {
        let term =
            Termination { policy: TerminationPolicy::Saturation { patience: 2 }, max_dists: 0 };
        let mut state = TermState::new(term, 1);
        let mut buffer = SortedBuffer::new(4);
        buffer.insert(Neighbor::new(0, 5.0));
        state.note_expansion(&buffer); // fingerprint set
        assert!(!state.should_stop(0.0, &buffer, 0));
        state.note_expansion(&buffer); // stale 1
        assert!(!state.should_stop(0.0, &buffer, 0));
        // An improving expansion resets the counter.
        buffer.insert(Neighbor::new(1, 1.0));
        state.note_expansion(&buffer);
        assert!(!state.should_stop(0.0, &buffer, 0));
        state.note_expansion(&buffer); // stale 1
        state.note_expansion(&buffer); // stale 2 -> saturated
        assert!(state.should_stop(0.0, &buffer, 0));
    }
}
