//! Log-bucketed latency histogram for serving-path measurement.
//!
//! The serving layer (`gass-serve`) and the open-loop load generator
//! (`ext_serve`) both need latency quantiles over millions of samples
//! without keeping the samples: a fixed-size histogram whose buckets grow
//! geometrically, so relative error is bounded (~4% per bucket) across
//! nine orders of magnitude of latency. Recording is a single counter
//! increment — cheap enough for the per-request hot path — and histograms
//! recorded independently by worker threads [`Histogram::merge`] into one
//! distribution for the stats endpoint, exactly like HdrHistogram-style
//! aggregation in production servers (the workspace builds offline, so
//! this is the zero-dependency equivalent).

/// Sub-buckets per power of two: each bucket spans a `2^(1/16)` ratio, so
/// a reported quantile is within ~4.4% of the true sample value.
const SUBS_PER_OCTAVE: usize = 16;
/// Octaves covered: values in `[1, 2^40)` resolve to a real bucket;
/// larger values clamp into the final bucket.
const OCTAVES: usize = 40;
const BUCKETS: usize = SUBS_PER_OCTAVE * OCTAVES;

/// A log-bucketed histogram over `u64` samples (microseconds, by
/// convention, though the scale is the caller's choice).
///
/// ```
/// use gass_core::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for us in [100u64, 200, 300, 400, 10_000] {
///     h.record(us);
/// }
/// assert_eq!(h.count(), 5);
/// // p50 lands in the bucket holding 300 (within the ~4% bucket width).
/// let p50 = h.quantile(0.50);
/// assert!((280..=320).contains(&p50), "{p50}");
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample: `floor(log2(v) * 16)`, computed from the
/// bit width plus a 4-bit sub-octave mantissa slice. Zero maps to the
/// first bucket.
fn bucket_of(v: u64) -> usize {
    if v < 2 {
        return 0;
    }
    let octave = 63 - v.leading_zeros() as usize; // floor(log2 v) >= 1
                                                  // The 4 mantissa bits right below the leading bit pick the sub-bucket.
    let sub = ((v >> octave.saturating_sub(4)) & 0xF) as usize;
    let idx = octave * SUBS_PER_OCTAVE + if octave >= 4 { sub } else { 0 };
    idx.min(BUCKETS - 1)
}

/// Representative value (geometric lower edge) of a bucket, the value
/// reported for quantiles resolving to it.
fn bucket_value(idx: usize) -> u64 {
    let octave = idx / SUBS_PER_OCTAVE;
    let sub = idx % SUBS_PER_OCTAVE;
    if octave < 4 {
        // Low octaves have one populated sub-bucket; value is 2^octave.
        return 1u64 << octave;
    }
    (1u64 << octave) + ((sub as u64) << (octave - 4))
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at quantile `q` in `[0, 1]`: the representative value of
    /// the first bucket whose cumulative count reaches `ceil(q * count)`.
    /// Exact recorded extremes are used for `q = 0` and `q = 1`; an empty
    /// histogram reports 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Clamp into the true recorded range: bucket edges can
                // stick out past min/max for sparse histograms.
                return bucket_value(idx).clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Adds every sample of `other` into `self` (worker-local histograms
    /// fold into the shared one).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Non-empty buckets as `(representative_value, count)` pairs in
    /// ascending value order — the export shape for stats endpoints.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_value(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn buckets_are_monotone_and_tight() {
        let mut prev = 0;
        for v in [0u64, 1, 2, 3, 7, 8, 100, 1000, 65_535, 65_536, 1 << 30] {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket_of must be monotone at {v}");
            prev = b;
            // The representative value is within one bucket ratio below v:
            // ~4.4% once sub-buckets kick in (v >= 16), a full octave below.
            let rep = bucket_value(b);
            assert!(rep <= v.max(1), "rep {rep} > {v}");
            let ratio = if v >= 16 { 1.08 } else { 2.0 };
            assert!((rep as f64) >= v as f64 / ratio, "rep {rep} too far below {v}");
        }
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        for (q, want) in [(0.50, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            assert!((got - want).abs() / want < 0.05, "q={q}: got {got}, want ~{want}");
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 10_000);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [3u64, 17, 170, 1_700, 42] {
            a.record(v);
            all.record(v);
        }
        for v in [9u64, 90, 900, 1 << 20] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn single_sample_pins_all_quantiles() {
        let mut h = Histogram::new();
        h.record(777);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let got = h.quantile(q);
            assert!((720..=777).contains(&got), "q={q}: {got}");
        }
        assert_eq!(h.max(), 777);
    }

    #[test]
    fn reset_empties() {
        let mut h = Histogram::new();
        h.record(5);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.9), 0);
    }

    #[test]
    fn nonzero_buckets_export() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(100);
        h.record(1_000_000);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].1, 2);
        assert_eq!(buckets[1].1, 1);
        assert!(buckets[0].0 < buckets[1].0);
    }

    #[test]
    fn huge_values_clamp_into_last_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(0.5) > 0);
    }
}
