//! Distance-kernel micro-benchmarks: the innermost loop of every method.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for dim in [96usize, 128, 256, 960] {
        let a: Vec<f32> = (0..dim).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..dim).map(|i| (i as f32).cos()).collect();
        group.bench_with_input(BenchmarkId::new("l2_sq", dim), &dim, |bench, _| {
            bench.iter(|| gass_core::l2_sq(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("dot", dim), &dim, |bench, _| {
            bench.iter(|| gass_core::distance::dot(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
