//! `gass-serve` — a concurrent query service over a built GASS index.
//!
//! Turns the repo's offline searcher into a long-lived server:
//! connection handlers admit requests into a bounded striped queue
//! ([`queue::BatchQueue`]), per-core worker executors drain micro-batches
//! and answer them through coalesced batch-search calls
//! ([`engine::execute_coalesced`]), and admission control fast-rejects
//! work beyond the configured backlog so overload degrades by shedding
//! load rather than by unbounded queueing latency. The wire format is a
//! length-prefixed binary protocol ([`protocol`]); a blocking
//! [`client::Client`] speaks it for tests and load generation.
//!
//! Micro-batching is observationally invisible: a coalesced batch
//! returns bit-identical results to per-request searches (the batch
//! kernel at one thread *is* the sequential per-query loop), so batching
//! changes throughput and latency, never answers.
//!
//! Zero external dependencies — plain `std` sockets and threads, in
//! keeping with the workspace's offline shims discipline.

pub mod client;
pub mod engine;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::Client;
pub use engine::execute_coalesced;
pub use protocol::{QueryRequest, Request, Response, Status};
pub use queue::{BatchQueue, PushError};
pub use server::{serve, ServeConfig, ServerHandle, StatsSnapshot};
