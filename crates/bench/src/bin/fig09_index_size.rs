//! Figure 9: final index size (including raw data) vs the construction
//! footprint of Figure 8 — the gap is the transient construction state.
//!
//! Paper shape: EFANNA/KGraph/HCNNG (and their derivatives) consume far
//! more during construction than their final index retains; II-based
//! methods build nearly in place.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig09_index_size
//! ```

use gass_bench::{results_dir, small_tiers};
use gass_core::nd::NdStrategy;
use gass_data::DatasetKind;
use gass_eval::{fmt_bytes, Table};
use gass_graphs::{build_method, MethodKind};

fn main() {
    let mut table = Table::new(vec![
        "tier",
        "method",
        "final_index_size",
        "edges",
        "avg_degree",
        "bytes_per_vector",
    ]);

    for tier in small_tiers() {
        let base = DatasetKind::Deep.generate_base(tier.n, 3);
        let raw = base.heap_bytes();
        let mut roster = MethodKind::all_sota();
        roster.push(MethodKind::Baseline(NdStrategy::Rnd));
        for kind in roster {
            let built = build_method(kind, base.clone(), 5);
            let s = built.index.stats();
            let total = raw + s.graph_bytes + s.aux_bytes;
            table.row(vec![
                tier.label.to_string(),
                kind.name(),
                fmt_bytes(total),
                s.edges.to_string(),
                format!("{:.1}", s.avg_degree),
                format!("{:.0}", total as f64 / tier.n as f64),
            ]);
            eprintln!("done: {} {}", tier.label, kind.name());
        }
    }
    table.emit(&results_dir(), "fig09_index_size").expect("write results");
}
