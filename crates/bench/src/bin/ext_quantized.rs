//! Extension experiment: the compressed-serving codec ladder —
//! full-precision, SQ8, SQ4, and PQ traversal with exact rerank — against
//! the PR 2 serving configuration (SIMD + prefetch + frozen CSR + aligned
//! store) on the same built graph.
//!
//! The ladder runs on the 100K tier of the *Gist* analog (960 dims): a
//! 384 MB `f32` store vs 96 MB (SQ8) / 48 MB (SQ4) / 8 MB (PQ m=160)
//! code stores, which is the memory-bound regime compressed serving
//! targets — traversal bandwidth, not kernel arithmetic, is the serving
//! bottleneck. (On a cache-resident tier like Deep-96 at 100K — 38 MB
//! against this host's 260 MB L3 — the same ladder is flat: the code
//! kernels' unpack/LUT arithmetic costs about what the `f32` kernel
//! saves in loads.)
//!
//! The ladder starts at the full-precision serving path, then quantizes
//! the index per codec and sweeps the rerank factor. Quantized rows
//! traverse on codes (4x / 8x / 48x less bandwidth per candidate) and
//! re-score a `rerank_factor * k` pool at full precision before
//! returning, so the `DistCounter` split shows u8 evaluations dominating
//! while the handful of f32 evaluations restores exact distances.
//! Quantization is an *approximation*: recall dips below the
//! full-precision row as the code rate drops, and the rerank factor buys
//! it back — SQ8/SQ4 recover at small pools, PQ at 0.67 bits/dim needs a
//! deeper sweep (the pool must contain the true neighbors for the exact
//! rerank to surface them).
//!
//! Acceptance shape: on the 100K tier, a quantized rung reaches >= 1.5x
//! the full-precision serving QPS at recall@10 >= 0.95, and the PQ
//! (m = dim/6, 4-bit) code store is >= 4x smaller than SQ8's while some
//! PQ rung still clears recall@10 >= 0.95 after exact rerank. The
//! harness also proves the `--quant none` contract: an unquantized index
//! is untouched by the quantization subsystem — two deterministic passes
//! return bit-identical recall and distance totals.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin ext_quantized
//! ```
//!
//! `GASS_SCALE` scales the dataset, `GASS_QUERIES` the query count.
//! Output: `results/ext_quantized.json`.

use gass_bench::{num_queries, results_dir, scale};
use gass_core::distance::DistCounter;
use gass_core::index::{AnnIndex, QueryParams};
use gass_core::CodecSpec;
use gass_eval::{measure_throughput, measure_throughput_batch, recall_at_k, write_json, Table};
use gass_graphs::{HnswIndex, HnswParams};
use serde::Serialize;

const K: usize = 10;
const ROUNDS: usize = 15;
/// Throughput repetitions per rung; the best run is the measurement.
const REPS: usize = 3;

#[derive(Serialize)]
struct RungRecord {
    variant: String,
    codec: String,
    rerank_factor: usize,
    /// Bytes the traversal path reads per vector: the code row for
    /// quantized rungs, the full `f32` row for the baseline.
    row_bytes: usize,
    /// Heap footprint of the structure traversal reads distances from:
    /// the code store (codes + codebooks) when quantized, the aligned
    /// `f32` store otherwise.
    serving_bytes: usize,
    recall_at_10: f64,
    dist_u8_total: u64,
    dist_f32_total: u64,
    qps_1t: f64,
    p50_us_1t: f64,
    p99_us_1t: f64,
    qps_mt: f64,
    qps_batch_mt: f64,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    n: usize,
    dim: usize,
    num_queries: usize,
    k: usize,
    beam_width: usize,
    rounds: usize,
    threads_mt: usize,
    host_cores: usize,
    simd_backend: &'static str,
    /// Two full-precision passes over the unquantized index returned
    /// bit-identical recall and distance totals (the `--quant none`
    /// contract: quantization off is the PR 2 path, untouched).
    quant_none_identical: bool,
    /// SQ8 code-store bytes over PQ code-store bytes (codes + codebooks);
    /// the acceptance bar is >= 4x.
    pq_size_ratio_vs_sq8: f64,
    /// Best recall@10 over the PQ rungs; the acceptance bar is >= 0.95.
    pq_best_recall_at_10: f64,
    /// Best quantized QPS (1 thread) at recall@10 >= 0.95, over the
    /// full-precision serving QPS.
    speedup_qps_1t: f64,
    /// Same ratio for the multi-threaded work-queue measurement.
    speedup_qps_mt: f64,
    rungs: Vec<RungRecord>,
}

/// One deterministic, single-threaded pass over the queries in order:
/// recall@10 plus the u8/f32 distance-call split.
fn deterministic_pass(
    index: &HnswIndex,
    queries: &gass_core::VectorStore,
    truth: &[Vec<gass_core::Neighbor>],
    params: &QueryParams,
) -> (f64, u64, u64) {
    let counter = DistCounter::new();
    let mut recall = 0.0;
    for (qi, row) in truth.iter().enumerate() {
        let res = index.search(queries.get(qi as u32), params, &counter);
        recall += recall_at_k(row, &res.neighbors, K);
    }
    (recall / truth.len() as f64, counter.get_u8(), counter.get_f32())
}

fn main() {
    let n = 100_000 * scale();
    let host_cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let threads_mt = host_cores.min(8);
    // Same build seed + serving configuration as `ext_throughput`, so the
    // full-precision rung here *is* the PR 2 frozen+SIMD baseline on this
    // dataset. Queries are an in-distribution holdout (the paper's
    // protocol for the real datasets) rather than a fresh draw: in 960
    // dims a fresh mixture draw lands between the base clusters and every
    // method plateaus well below the 0.95 operating point.
    let all = gass_data::synth::gist_like(n + num_queries(), 333);
    let (base, queries) = gass_data::holdout_split(&all, num_queries(), 333);
    let dim = base.dim();
    let truth = gass_data::ground_truth(&base, &queries, K);
    println!("Extension: compressed serving codec ladder, Gist (n={n}, dim={dim}), k={K}\n");

    eprintln!("building HNSW ({host_cores} threads)...");
    let mut index = HnswIndex::build(
        base,
        HnswParams { m: 16, ef_construction: 128, seed: 333, threads: host_cores },
    );
    // PR 2 serving configuration: the quantization baseline.
    gass_core::set_simd_enabled(true);
    gass_core::set_prefetch_enabled(true);
    index.freeze();
    index.align_store();

    // Pick the smallest swept beam width whose full-precision recall
    // clears 0.95 (the acceptance operating point).
    let mut beam_width = 80;
    let mut params = QueryParams::new(K, beam_width);
    for l in [80usize, 128, 192, 256] {
        params = QueryParams::new(K, l);
        let (r, _, _) = deterministic_pass(&index, &queries, &truth, &params);
        beam_width = l;
        if r >= 0.95 {
            break;
        }
        eprintln!("L={l}: recall {r:.4} < 0.95, widening");
    }

    let mut table = Table::new(vec![
        "variant",
        "row_B",
        "store_MB",
        "recall@10",
        "dists_u8",
        "dists_f32",
        "qps(1t)",
        "p50_us",
        "p99_us",
        "qps(mt)",
        "qps(batch-mt)",
    ]);
    let mut rungs: Vec<RungRecord> = Vec::new();
    let mut measure = |index: &HnswIndex,
                       label: String,
                       codec: &str,
                       params: &QueryParams,
                       rerank: usize,
                       table: &mut Table| {
        let (recall, u8s, f32s) = deterministic_pass(index, &queries, &truth, params);
        let (row_bytes, serving_bytes) = match index.quantized() {
            Some(q) => (q.code_row(0).len(), q.heap_bytes()),
            None => (dim * 4, index.store().heap_bytes()),
        };
        let best = |threads: usize| {
            (0..REPS)
                .map(|_| measure_throughput(index, &queries, params, threads, ROUNDS))
                .max_by(|a, b| a.qps.total_cmp(&b.qps))
                .unwrap()
        };
        let t1 = best(1);
        let tm = best(threads_mt);
        let tb = (0..REPS)
            .map(|_| measure_throughput_batch(index, &queries, params, threads_mt, ROUNDS))
            .max_by(|a, b| a.qps.total_cmp(&b.qps))
            .unwrap();
        table.row(vec![
            label.clone(),
            row_bytes.to_string(),
            format!("{:.1}", serving_bytes as f64 / (1 << 20) as f64),
            format!("{recall:.4}"),
            u8s.to_string(),
            f32s.to_string(),
            format!("{:.0}", t1.qps),
            format!("{:.1}", t1.p50_us),
            format!("{:.1}", t1.p99_us),
            format!("{:.0}", tm.qps),
            format!("{:.0}", tb.qps),
        ]);
        eprintln!("done: {label}");
        rungs.push(RungRecord {
            variant: label,
            codec: codec.to_string(),
            rerank_factor: rerank,
            row_bytes,
            serving_bytes,
            recall_at_10: recall,
            dist_u8_total: u8s,
            dist_f32_total: f32s,
            qps_1t: t1.qps,
            p50_us_1t: t1.p50_us,
            p99_us_1t: t1.p99_us,
            qps_mt: tm.qps,
            qps_batch_mt: tb.qps,
        });
    };

    // The `--quant none` contract: the unquantized index is the PR 2 path,
    // bit-for-bit. Two deterministic passes must agree exactly.
    let pass_a = deterministic_pass(&index, &queries, &truth, &params);
    let pass_b = deterministic_pass(&index, &queries, &truth, &params);
    let quant_none_identical = pass_a == pass_b && pass_a.1 == 0;
    assert!(
        quant_none_identical,
        "full-precision passes must be deterministic and never touch u8 codes"
    );

    measure(&index, "full-precision (serving)".into(), "none", &params, 1, &mut table);

    // The ladder: each codec re-encodes the same serving state in place
    // and sweeps its rerank factor. The sweeps widen as the code rate
    // drops — SQ8 (8 bits/dim) recovers with small pools, SQ4 (4
    // bits/dim) the same, PQ at m = dim/6 (0.67 bits/dim) ranks the pool
    // coarsely enough that only a deep pool contains the true top-10.
    let mut pq_bytes = 0usize;
    let mut sq8_bytes = 0usize;
    let ladder: [(CodecSpec, &str, &[usize]); 3] = [
        (CodecSpec::Sq8, "sq8", &[2, 4, 8]),
        (CodecSpec::Sq4, "sq4", &[2, 4, 8]),
        (CodecSpec::Pq { m: None }, "pq", &[16, 32, 64, 96]),
    ];
    for (spec, codec, sweep) in ladder {
        let resolved = spec.resolve(dim);
        eprintln!("quantizing ({resolved})...");
        index.quantize(spec);
        let bytes = index.quantized().expect("quantized").heap_bytes();
        match codec {
            "sq8" => sq8_bytes = bytes,
            "pq" => pq_bytes = bytes,
            _ => {}
        }
        for &rerank in sweep {
            let qparams = params.with_rerank_factor(rerank);
            measure(
                &index,
                format!("{resolved} rerank={rerank}"),
                codec,
                &qparams,
                rerank,
                &mut table,
            );
        }
    }

    let full = &rungs[0];
    let eligible = |r: &&RungRecord| {
        r.codec != "none"
            && r.recall_at_10 >= 0.95
            && r.recall_at_10 >= full.recall_at_10 - 0.01
    };
    let best_1t = rungs[1..].iter().filter(eligible).map(|r| r.qps_1t).fold(0.0, f64::max);
    let best_mt = rungs[1..].iter().filter(eligible).map(|r| r.qps_mt).fold(0.0, f64::max);
    let pq_size_ratio_vs_sq8 = sq8_bytes as f64 / pq_bytes.max(1) as f64;
    let pq_best_recall_at_10 =
        rungs.iter().filter(|r| r.codec == "pq").map(|r| r.recall_at_10).fold(0.0, f64::max);
    assert!(
        pq_size_ratio_vs_sq8 >= 4.0,
        "PQ code store must be >= 4x smaller than SQ8 ({sq8_bytes} vs {pq_bytes})"
    );
    assert!(
        pq_best_recall_at_10 >= 0.95,
        "a PQ rung must clear recall@10 >= 0.95 after exact rerank \
         (best: {pq_best_recall_at_10:.4})"
    );
    let record = Record {
        experiment: "ext_quantized",
        n,
        dim,
        num_queries: queries.len(),
        k: K,
        beam_width,
        rounds: ROUNDS,
        threads_mt,
        host_cores,
        simd_backend: gass_core::simd_backend(),
        quant_none_identical,
        pq_size_ratio_vs_sq8,
        pq_best_recall_at_10,
        speedup_qps_1t: best_1t / full.qps_1t.max(1e-12),
        speedup_qps_mt: best_mt / full.qps_mt.max(1e-12),
        rungs,
    };

    println!("{}", table.render());
    println!(
        "best quantized rung at recall@10 >= 0.95: {:.2}x QPS (1 thread), \
         {:.2}x QPS ({} threads) over full-precision serving; PQ code store \
         {:.1}x smaller than SQ8 at best PQ recall {:.4}. u8 evaluations \
         dominate the quantized rows, the f32 column is the exact rerank.",
        record.speedup_qps_1t,
        record.speedup_qps_mt,
        threads_mt,
        record.pq_size_ratio_vs_sq8,
        record.pq_best_recall_at_10
    );
    let path = write_json(&results_dir(), "ext_quantized", &record).expect("write results");
    println!("wrote {}", path.display());
}
