//! Figure 7: indexing time across methods and dataset sizes (Deep).
//!
//! Paper shape to reproduce: II-based methods (ELPIS, HNSW) build fastest;
//! NSG/SSG pay for their EFANNA base; SPTAG variants are by far the
//! slowest; only HNSW/ELPIS/Vamana appear at the largest tiers.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig07_index_time
//! ```

use gass_bench::{results_dir, tiers};
use gass_data::DatasetKind;
use gass_eval::{fmt_count, Table};
use gass_graphs::{build_method, MethodKind};

fn main() {
    let mut table = Table::new(vec!["tier", "method", "build_seconds", "build_dist_calcs"]);
    let all_tiers = tiers();

    for (ti, tier) in all_tiers.iter().enumerate() {
        let base = DatasetKind::Deep.generate_base(tier.n, 3);
        // Mirror the paper's exclusions: the heavy builders drop out after
        // the small tiers (they exceeded 24–48h / RAM in the paper).
        let roster: Vec<MethodKind> = match ti {
            0 => MethodKind::all_sota(),
            1 => vec![
                MethodKind::Hnsw,
                MethodKind::Elpis,
                MethodKind::Vamana,
                MethodKind::Nsg,
                MethodKind::Ssg,
                MethodKind::Hcnng,
                MethodKind::SptagBkt,
                MethodKind::SptagKdt,
            ],
            _ => MethodKind::scalable(),
        };
        for kind in roster {
            let t = std::time::Instant::now();
            let built = build_method(kind, base.clone(), 5);
            let secs = t.elapsed().as_secs_f64();
            table.row(vec![
                tier.label.to_string(),
                kind.name(),
                format!("{secs:.2}"),
                fmt_count(built.build.dist_calcs),
            ]);
            eprintln!("done: {} {} ({secs:.1}s)", tier.label, kind.name());
        }
    }
    table.emit(&results_dir(), "fig07_index_time").expect("write results");
    println!(
        "Read as Fig. 7 (log-scale bars per tier). Expected ordering at \
         every tier: ELPIS <= HNSW < Vamana << NSG/SSG << SPTAG-*."
    );
}
