//! Serialization traits (subset of `serde::ser`).

use std::fmt::Display;

/// Errors produced by a serializer.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can describe itself to any [`Serializer`].
pub trait Serialize {
    /// Feeds `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format backend (subset of `serde::Serializer`).
pub trait Serializer: Sized {
    /// Value returned on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sequence sub-serializer.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple sub-serializer.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-struct sub-serializer.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-variant sub-serializer.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Map sub-serializer.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Struct sub-serializer.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Struct-variant sub-serializer.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct.
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype enum variant.
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begins a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Sequence serializer.
pub trait SerializeSeq {
    /// Value returned on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: ?Sized + Serialize>(
        &mut self,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple serializer.
pub trait SerializeTuple {
    /// Value returned on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: ?Sized + Serialize>(
        &mut self,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-struct serializer.
pub trait SerializeTupleStruct {
    /// Value returned on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-variant serializer.
pub trait SerializeTupleVariant {
    /// Value returned on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map serializer.
pub trait SerializeMap {
    /// Value returned on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one key.
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes one value.
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct serializer.
pub trait SerializeStruct {
    /// Value returned on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct-variant serializer.
pub trait SerializeStructVariant {
    /// Value returned on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------
// Serialize impls for the primitive and std types experiment records use.
// ---------------------------------------------------------------------

macro_rules! primitive_serialize {
    ($($t:ty => $method:ident as $as_:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $as_)
            }
        }
    )*};
}

primitive_serialize! {
    bool => serialize_bool as bool,
    i8 => serialize_i8 as i8,
    i16 => serialize_i16 as i16,
    i32 => serialize_i32 as i32,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u8 as u8,
    u16 => serialize_u16 as u16,
    u32 => serialize_u32 as u32,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
    f32 => serialize_f32 as f32,
    f64 => serialize_f64 as f64,
    char => serialize_char as char,
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_key(k)?;
            map.serialize_value(v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_key(k)?;
            map.serialize_value(v)?;
        }
        map.end()
    }
}

impl<A: Serialize> Serialize for (A,) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(1)?;
        tup.serialize_element(&self.0)?;
        tup.end()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(2)?;
        tup.serialize_element(&self.0)?;
        tup.serialize_element(&self.1)?;
        tup.end()
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(3)?;
        tup.serialize_element(&self.0)?;
        tup.serialize_element(&self.1)?;
        tup.serialize_element(&self.2)?;
        tup.end()
    }
}
