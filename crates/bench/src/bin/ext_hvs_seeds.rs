//! Extension experiment: HVS, the method the paper could not run — does
//! density-aware Voronoi seed selection beat HNSW's random-leveled
//! hierarchy?
//!
//! Both indexes share the same base-graph recipe (II + RND); they differ
//! only in the seed structure (Voronoi pyramid vs stacked NSW), so the
//! comparison isolates exactly the contribution HVS claims.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin ext_hvs_seeds
//! ```

use gass_bench::{beam_sweep, num_queries, results_dir, tiers};
use gass_data::DatasetKind;
use gass_eval::{sweep, Table};
use gass_graphs::{HnswIndex, HnswParams, HvsIndex, HvsParams};

fn main() {
    let n = tiers()[1].n;
    let k = 10;
    let (base, queries) = DatasetKind::Deep.generate(n, num_queries(), 441);
    let truth = gass_data::ground_truth(&base, &queries, k);
    println!("Extension: HVS (Voronoi seeds) vs HNSW (SN seeds), Deep (n={n})\n");

    let hvs = HvsIndex::build(
        base.clone(),
        HvsParams { max_degree: 24, ef_construction: 96, ..HvsParams::small() },
    );
    let hnsw = HnswIndex::build(
        base.clone(),
        HnswParams { m: 12, ef_construction: 96, seed: 441, threads: 1 },
    );

    let mut table = Table::new(vec!["method", "build_dists", "L", "recall", "dists_per_query"]);
    for p in sweep(&hvs, &queries, &truth, k, &beam_sweep(), 1) {
        table.row(vec![
            "HVS".to_string(),
            hvs.build_report().dist_calcs.to_string(),
            p.beam_width.to_string(),
            format!("{:.4}", p.recall),
            (p.dist_calcs / queries.len() as u64).to_string(),
        ]);
    }
    eprintln!("done: HVS");
    for p in sweep(&hnsw, &queries, &truth, k, &beam_sweep(), 1) {
        table.row(vec![
            "HNSW".to_string(),
            hnsw.build_report().dist_calcs.to_string(),
            p.beam_width.to_string(),
            format!("{:.4}", p.recall),
            (p.dist_calcs / queries.len() as u64).to_string(),
        ]);
    }
    eprintln!("done: HNSW");

    table.emit(&results_dir(), "ext_hvs_seeds").expect("write results");
    println!(
        "If the Voronoi pyramid routes as well as SN at lower seed cost, \
         HVS matches HNSW's curve with fewer dists/query at small L; the \
         paper could not verify either way (official code unrunnable)."
    );
}
