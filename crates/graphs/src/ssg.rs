//! **SSG** — Satellite System Graph: like NSG it refines an EFANNA base,
//! but (i) gathers each node's candidates by *local BFS expansion*
//! (neighbors and neighbors-of-neighbors) instead of a per-node beam
//! search, (ii) prunes with **MOND** (angle threshold θ), and (iii)
//! repairs connectivity with multiple trees from random roots rather than
//! NSG's single medoid-rooted tree. Queries use K-sampled random seeds.

use crate::common::{add_reverse_edges, repair_connectivity, BuildReport};
use crate::efanna::{EfannaIndex, EfannaParams};
use gass_core::distance::{DistCounter, Space};
use gass_core::graph::{AdjacencyGraph, FlatGraph, GraphView};
use gass_core::index::{AnnIndex, IndexStats, QueryParams, ScratchPool};
use gass_core::nd::NdStrategy;
use gass_core::neighbor::Neighbor;
use gass_core::reorder::{ReorderStrategy, ServingState};
use gass_core::search::{beam_search_frozen, SearchResult};
use gass_core::seed::{RandomSeeds, SeedProvider};
use gass_core::store::VectorStore;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// SSG construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct SsgParams {
    /// Final maximum out-degree `R`.
    pub max_degree: usize,
    /// Candidate pool per node gathered by BFS expansion.
    pub pool_size: usize,
    /// MOND angle threshold in degrees (paper default 60°).
    pub theta_deg: f32,
    /// Number of random DFS-tree connectivity passes.
    pub num_trees: usize,
    /// Parameters of the EFANNA base graph.
    pub base: EfannaParams,
    /// RNG seed.
    pub seed: u64,
    /// Construction worker threads (0 = all available cores). The two-hop
    /// expansion and MOND pruning read only the immutable base graph, so
    /// the parallel phase feeds a serial in-order apply and the built
    /// graph is bit-identical at any thread count. (The EFANNA base has
    /// its own `threads` knob.)
    pub threads: usize,
}

impl SsgParams {
    /// Small-scale defaults.
    pub fn small() -> Self {
        Self {
            max_degree: 24,
            pool_size: 80,
            theta_deg: 60.0,
            num_trees: 3,
            base: EfannaParams::small(),
            seed: 42,
            threads: 0,
        }
    }
}

/// A built SSG index.
pub struct SsgIndex {
    store: VectorStore,
    graph: FlatGraph,
    serving: ServingState,
    seeds: RandomSeeds,
    scratch: ScratchPool,
    build: BuildReport,
}

impl SsgIndex {
    /// Builds SSG from scratch (including its EFANNA base).
    pub fn build(store: VectorStore, params: SsgParams) -> Self {
        let efanna = EfannaIndex::build(store, params.base);
        let (store, base_graph, _forest, base_build) = efanna.into_parts();
        Self::from_base(store, &base_graph, base_build, params)
    }

    /// Builds SSG on a pre-built base graph.
    pub fn from_base(
        store: VectorStore,
        base_graph: &FlatGraph,
        base_build: BuildReport,
        params: SsgParams,
    ) -> Self {
        let counter = DistCounter::new();
        let start = std::time::Instant::now();
        let n = store.len();
        let mond = NdStrategy::Mond { theta_deg: params.theta_deg };
        let graph = {
            let space = Space::new(&store, &counter);
            let threads = gass_core::effective_threads(params.threads);
            // Phase A: two-hop expansion + MOND pruning read only the
            // immutable base graph, so the per-node work parallelizes
            // freely.
            let prepared: Vec<Vec<Neighbor>> =
                gass_core::par_map_with(threads, n, Vec::new, |pool: &mut Vec<u32>, u| {
                    let u = u as u32;
                    // Two-hop local expansion on the base graph.
                    pool.clear();
                    pool.extend_from_slice(base_graph.neighbors(u));
                    'outer: for &v in base_graph.neighbors(u) {
                        for &w in base_graph.neighbors(v) {
                            if w != u {
                                pool.push(w);
                                if pool.len() >= params.pool_size {
                                    break 'outer;
                                }
                            }
                        }
                    }
                    pool.sort_unstable();
                    pool.dedup();
                    let scored: Vec<Neighbor> = pool
                        .iter()
                        .filter(|&&v| v != u)
                        .map(|&v| Neighbor::new(v, space.dist(u, v)))
                        .collect();
                    mond.diversify(space, u, &scored, params.max_degree)
                });
            // Phase B: serial apply in node order — identical to the
            // sequential build.
            let mut g = AdjacencyGraph::with_degree_hint(n, params.max_degree + 1);
            for (u, kept) in prepared.iter().enumerate() {
                let u = u as u32;
                g.set_neighbors(u, kept.iter().map(|k| k.id).collect());
                add_reverse_edges(space, &mut g, u, kept, params.max_degree, mond);
            }

            // Multiple random-rooted connectivity repairs.
            let mut rng = SmallRng::seed_from_u64(params.seed ^ 0x55);
            for _ in 0..params.num_trees.max(1) {
                let root = rng.random_range(0..n as u32);
                repair_connectivity(space, &mut g, root);
            }
            g
        };
        let build = BuildReport {
            seconds: start.elapsed().as_secs_f64() + base_build.seconds,
            dist_calcs: counter.get() + base_build.dist_calcs,
        };
        let flat = FlatGraph::from_adjacency(&graph, None);
        let seeds = RandomSeeds::new(n, params.seed ^ 0x5eed);
        Self {
            store,
            graph: flat,
            seeds,
            serving: ServingState::new(),
            scratch: ScratchPool::new(),
            build,
        }
    }

    /// Total construction cost (base + refinement).
    pub fn build_report(&self) -> BuildReport {
        self.build
    }

    /// The refined graph.
    pub fn graph(&self) -> &FlatGraph {
        &self.graph
    }
}

impl AnnIndex for SsgIndex {
    fn name(&self) -> String {
        "SSG".to_string()
    }

    fn num_vectors(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        let space =
            Space::new(&self.store, counter).with_quant(self.serving.quant_view(params));
        let mut seeds = Vec::new();
        self.seeds.seeds(space, query, params.seed_count, &mut seeds);
        let res = self.scratch.with(self.store.len(), params.beam_width, |scratch| {
            beam_search_frozen(
                &self.graph,
                self.serving.csr(),
                space,
                query,
                &seeds,
                params.k,
                params.beam_width,
                scratch,
                params.termination(),
            )
        });
        self.serving.finish(res)
    }

    fn freeze(&mut self) {
        self.serving.freeze(&self.graph);
    }

    fn is_frozen(&self) -> bool {
        self.serving.is_frozen()
    }

    fn quantize(&mut self, spec: gass_core::CodecSpec) {
        self.serving.quantize(&self.store, spec);
    }

    fn is_quantized(&self) -> bool {
        self.serving.is_quantized()
    }

    fn reorder(&mut self, strategy: ReorderStrategy) {
        if let Some(map) = self.serving.reorder(&self.graph, &mut self.store, strategy, &[]) {
            self.seeds.reorder(&map);
        }
    }

    fn is_reordered(&self) -> bool {
        self.serving.is_reordered()
    }

    fn reorder_strategy(&self) -> ReorderStrategy {
        self.serving.strategy()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            nodes: self.graph.num_nodes(),
            edges: self.graph.num_edges(),
            avg_degree: self.graph.avg_degree(),
            max_degree: self.graph.max_degree(),
            graph_bytes: self.graph.heap_bytes() + self.serving.graph_bytes(),
            aux_bytes: self.serving.aux_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_data::ground_truth::ground_truth;
    use gass_data::synth::deep_like;

    #[test]
    fn ssg_high_recall() {
        let base = deep_like(500, 1);
        let queries = deep_like(15, 2);
        let idx = SsgIndex::build(base.clone(), SsgParams::small());
        let gt = ground_truth(&base, &queries, 10);
        let counter = DistCounter::new();
        let params = QueryParams::new(10, 96).with_seed_count(16);
        let mut hit = 0;
        for (qi, row) in gt.iter().enumerate() {
            let res = idx.search(queries.get(qi as u32), &params, &counter);
            hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
        }
        let recall = hit as f64 / 150.0;
        assert!(recall > 0.9, "SSG recall too low: {recall}");
    }

    #[test]
    fn local_expansion_avoids_per_node_beam_search() {
        // SSG's construction should cost fewer distance calls than NSG's
        // per-node beam searches on the same data/base parameters.
        use crate::nsg::{NsgIndex, NsgParams};
        let base = deep_like(300, 3);
        let ssg = SsgIndex::build(base.clone(), SsgParams::small());
        let nsg = NsgIndex::build(base, NsgParams::small());
        assert!(
            ssg.build_report().dist_calcs < nsg.build_report().dist_calcs,
            "SSG {} should undercut NSG {}",
            ssg.build_report().dist_calcs,
            nsg.build_report().dist_calcs
        );
    }
}
