//! Offline stand-in for the `libc` crate.
//!
//! The build environment has no registry access, so this shim declares
//! exactly the subset the workspace uses: the memory-mapping calls behind
//! `gass-core::mmap` and the scheduler-affinity calls behind
//! `gass-core::numa`. No code is vendored: `std` already links the
//! platform C library, so an `extern "C"` block is all a binding needs —
//! the loader resolves the symbols from the same `libc.so`/`libSystem`
//! the real crate would.
//!
//! Constants are the Linux/macOS values (they agree on everything below
//! except `MAP_PRIVATE`, where both use `0x02`). The declarations are
//! Unix-only; on other targets the crate compiles to just the type
//! aliases so dependents can keep a single manifest.

#![warn(missing_docs)]
#![allow(non_camel_case_types)] // C type names, matching the real crate

/// C `int`.
pub type c_int = i32;
/// C `void` (pointer target only).
pub type c_void = core::ffi::c_void;
/// C `size_t`.
pub type size_t = usize;
/// C `off_t` (64-bit file offsets on every supported target).
pub type off_t = i64;

/// Pages may be read.
pub const PROT_READ: c_int = 0x1;
/// Modifications are private (copy-on-write).
pub const MAP_PRIVATE: c_int = 0x02;
/// `mmap` failure sentinel.
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
/// Expect random page references (curb readahead).
pub const MADV_RANDOM: c_int = 1;
/// Expect sequential page references (aggressive readahead).
pub const MADV_SEQUENTIAL: c_int = 2;
/// Expect access soon (fault pages in ahead of use).
pub const MADV_WILLNEED: c_int = 3;

/// C `pid_t` (thread/process id; `0` means the calling thread for the
/// affinity calls below).
#[cfg(target_os = "linux")]
pub type pid_t = i32;

/// CPU affinity mask covering the kernel ABI default of 1024 CPUs
/// (`CPU_SETSIZE`), as an array of bit words. The real crate hides the
/// field behind `CPU_SET` macros; the workspace manipulates the bits
/// directly, so the shim exposes them.
#[cfg(target_os = "linux")]
#[derive(Clone, Copy)]
#[repr(C)]
pub struct cpu_set_t {
    /// One bit per CPU, little-endian within each word.
    pub bits: [u64; 16],
}

#[cfg(target_os = "linux")]
extern "C" {
    /// Restricts `pid` (0 = calling thread) to the CPUs set in `mask`.
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, mask: *const cpu_set_t) -> c_int;
    /// Reads `pid`'s (0 = calling thread) current CPU affinity mask.
    pub fn sched_getaffinity(pid: pid_t, cpusetsize: size_t, mask: *mut cpu_set_t) -> c_int;
}

#[cfg(unix)]
extern "C" {
    /// Maps `len` bytes of the object behind `fd` at `offset`.
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    /// Unmaps a region previously mapped with [`mmap`].
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    /// Advises the kernel about expected access patterns for a region.
    pub fn madvise(addr: *mut c_void, len: size_t, advice: c_int) -> c_int;
}
