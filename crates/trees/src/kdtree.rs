//! Randomized (truncated) K-D trees — the **KD** seed-selection structure
//! of EFANNA, SPTAG-KDT and HCNNG, and EFANNA's source of initial graph
//! neighbors.
//!
//! Following EFANNA, each tree picks its split dimension at random among
//! the highest-variance dimensions of the node's point set and splits at
//! the median, recursing until leaves hold at most `leaf_size` points. A
//! *forest* of such trees (each with a different random seed) provides
//! diversified candidates.
//!
//! Tree descent compares single coordinates, not full vectors, so it
//! performs no (counted) distance computations; the paper's
//! distance-calculation metric charges only the beam search that consumes
//! the seeds.

use gass_core::distance::Space;
use gass_core::reorder::IdRemap;
use gass_core::seed::SeedProvider;
use gass_core::store::VectorStore;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// How many of the top-variance dimensions the split dimension is drawn
/// from (EFANNA's default randomization).
const TOP_VARIANCE_POOL: usize = 5;

#[derive(Clone, Debug)]
enum Node {
    Split { dim: u32, value: f32, left: u32, right: u32 },
    Leaf { ids: Vec<u32> },
}

/// A single randomized K-D tree over a subset of stored vectors.
#[derive(Clone, Debug)]
pub struct KdTree {
    nodes: Vec<Node>,
    root: u32,
    leaf_size: usize,
}

impl KdTree {
    /// Builds a tree over `ids` with leaves of at most `leaf_size` points.
    ///
    /// # Panics
    /// Panics if `ids` is empty or `leaf_size == 0`.
    pub fn build(store: &VectorStore, ids: &[u32], leaf_size: usize, seed: u64) -> Self {
        assert!(!ids.is_empty(), "K-D tree over empty id set");
        assert!(leaf_size > 0, "leaf size must be positive");
        let mut tree = Self { nodes: Vec::new(), root: 0, leaf_size };
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut work = ids.to_vec();
        tree.root = tree.build_rec(store, &mut work, &mut rng);
        tree
    }

    fn build_rec(&mut self, store: &VectorStore, ids: &mut [u32], rng: &mut SmallRng) -> u32 {
        if ids.len() <= self.leaf_size {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node::Leaf { ids: ids.to_vec() });
            return idx;
        }
        let dim = pick_split_dim(store, ids, rng);
        // Median split via partial sort on the chosen coordinate.
        let mid = ids.len() / 2;
        ids.select_nth_unstable_by(mid, |&a, &b| {
            store.get(a)[dim].total_cmp(&store.get(b)[dim])
        });
        let value = store.get(ids[mid])[dim];
        // Guard against degenerate splits (all-equal coordinate): fall back
        // to an arbitrary halving, which keeps the tree balanced.
        let (lo, hi) = ids.split_at_mut(mid);
        if lo.is_empty() || hi.is_empty() {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node::Leaf { ids: ids.to_vec() });
            return idx;
        }
        let left = self.build_rec(store, lo, rng);
        let right = self.build_rec(store, hi, rng);
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node::Split { dim: dim as u32, value, left, right });
        idx
    }

    /// Collects approximately `budget` candidate ids near `query` by
    /// best-first descent with backtracking ordered by split-plane margin.
    pub fn candidates(&self, query: &[f32], budget: usize, out: &mut Vec<u32>) {
        // (margin, node): explore smallest margin first; the path to the
        // query's own leaf has margin 0.
        let mut frontier: Vec<(f32, u32)> = vec![(0.0, self.root)];
        while let Some((_, node)) = pop_min(&mut frontier) {
            match &self.nodes[node as usize] {
                Node::Leaf { ids } => {
                    out.extend_from_slice(ids);
                    if out.len() >= budget {
                        return;
                    }
                }
                Node::Split { dim, value, left, right } => {
                    let diff = query[*dim as usize] - *value;
                    let (near, far) =
                        if diff < 0.0 { (*left, *right) } else { (*right, *left) };
                    frontier.push((0.0, near));
                    frontier.push((diff.abs(), far));
                }
            }
        }
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// All leaves as id lists (used by SPTAG-style partitioning on TP
    /// trees; exposed here for tests and composition).
    pub fn leaves(&self) -> Vec<&[u32]> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Leaf { ids } => Some(ids.as_slice()),
                _ => None,
            })
            .collect()
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        let leaf_ids: usize = self
            .nodes
            .iter()
            .map(|n| match n {
                Node::Leaf { ids } => ids.capacity() * std::mem::size_of::<u32>(),
                _ => 0,
            })
            .sum();
        self.nodes.capacity() * std::mem::size_of::<Node>() + leaf_ids
    }

    /// Relabels the stored leaf ids through `map` after the vector store
    /// was permuted. Split planes compare query coordinates only, so the
    /// descent (and hence the set of vectors each leaf denotes) is
    /// unchanged.
    pub fn reorder(&mut self, map: &IdRemap) {
        for node in &mut self.nodes {
            if let Node::Leaf { ids } = node {
                for id in ids.iter_mut() {
                    *id = map.to_new(*id);
                }
            }
        }
    }
}

fn pick_split_dim(store: &VectorStore, ids: &[u32], rng: &mut SmallRng) -> usize {
    let dim = store.dim();
    // Estimate per-dimension variance on a bounded sample.
    let sample: Vec<u32> = if ids.len() > 64 {
        (0..64).map(|_| ids[rng.random_range(0..ids.len())]).collect()
    } else {
        ids.to_vec()
    };
    let mut mean = vec![0.0f64; dim];
    for &id in &sample {
        for (m, x) in mean.iter_mut().zip(store.get(id)) {
            *m += *x as f64;
        }
    }
    for m in &mut mean {
        *m /= sample.len() as f64;
    }
    let mut var: Vec<(f64, usize)> = vec![(0.0, 0); dim];
    for (d, v) in var.iter_mut().enumerate() {
        *v = (0.0, d);
    }
    for &id in &sample {
        for (d, x) in store.get(id).iter().enumerate() {
            let diff = *x as f64 - mean[d];
            var[d].0 += diff * diff;
        }
    }
    var.sort_by(|a, b| b.0.total_cmp(&a.0));
    let pool = TOP_VARIANCE_POOL.min(dim);
    var[rng.random_range(0..pool)].1
}

fn pop_min(frontier: &mut Vec<(f32, u32)>) -> Option<(f32, u32)> {
    if frontier.is_empty() {
        return None;
    }
    let mut best = 0;
    for i in 1..frontier.len() {
        if frontier[i].0 < frontier[best].0 {
            best = i;
        }
    }
    Some(frontier.swap_remove(best))
}

/// A forest of randomized K-D trees acting as the **KD** seed-selection
/// strategy.
#[derive(Clone, Debug)]
pub struct KdForest {
    trees: Vec<KdTree>,
    /// After a reorder: `new → old` table. The cross-tree merge sorts by
    /// *original* id so the truncated candidate set (and its order) is
    /// identical before and after any relabeling.
    orig: Option<Vec<u32>>,
}

impl KdForest {
    /// Builds `num_trees` randomized trees over all vectors in `store`.
    pub fn build(store: &VectorStore, num_trees: usize, leaf_size: usize, seed: u64) -> Self {
        assert!(num_trees > 0, "forest needs at least one tree");
        let ids: Vec<u32> = (0..store.len() as u32).collect();
        let trees = (0..num_trees)
            .map(|t| KdTree::build(store, &ids, leaf_size, seed.wrapping_add(t as u64)))
            .collect();
        Self { trees, orig: None }
    }

    /// Collects up to `budget` deduplicated candidates across all trees.
    pub fn candidates(&self, query: &[f32], budget: usize) -> Vec<u32> {
        let per_tree = budget.div_ceil(self.trees.len());
        let mut out = Vec::with_capacity(budget + per_tree);
        for t in &self.trees {
            t.candidates(query, per_tree, &mut out);
        }
        match &self.orig {
            Some(orig) => out.sort_unstable_by_key(|&id| orig[id as usize]),
            None => out.sort_unstable(),
        }
        out.dedup();
        out.truncate(budget.max(1));
        out
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Approximate heap bytes across trees.
    pub fn heap_bytes(&self) -> usize {
        self.trees.iter().map(KdTree::heap_bytes).sum()
    }
}

impl SeedProvider for KdForest {
    fn seeds(&self, _space: Space<'_>, query: &[f32], count: usize, out: &mut Vec<u32>) {
        out.extend(self.candidates(query, count.max(1)));
    }

    fn label(&self) -> &'static str {
        "KD"
    }

    fn reorder(&mut self, map: &IdRemap) {
        for t in &mut self.trees {
            t.reorder(map);
        }
        self.orig = Some(match self.orig.take() {
            // Compose: current `new → old` chained through the fresh map.
            Some(prev) => {
                (0..prev.len()).map(|id| prev[map.to_old(id as u32) as usize]).collect()
            }
            None => map.new_to_old().to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::distance::{l2_sq, DistCounter};

    fn grid_store() -> VectorStore {
        // 10x10 grid in 2-d.
        let mut s = VectorStore::new(2);
        for x in 0..10 {
            for y in 0..10 {
                s.push(&[x as f32, y as f32]);
            }
        }
        s
    }

    #[test]
    fn tree_partitions_all_points() {
        let store = grid_store();
        let ids: Vec<u32> = (0..100).collect();
        let tree = KdTree::build(&store, &ids, 8, 1);
        let mut all: Vec<u32> = tree.leaves().into_iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, ids, "leaves must partition the input exactly");
        assert!(tree.num_leaves() >= 100 / 8);
    }

    #[test]
    fn leaf_size_respected() {
        let store = grid_store();
        let ids: Vec<u32> = (0..100).collect();
        let tree = KdTree::build(&store, &ids, 5, 2);
        for leaf in tree.leaves() {
            assert!(leaf.len() <= 5);
        }
    }

    #[test]
    fn candidates_contain_true_nn_region() {
        let store = grid_store();
        let ids: Vec<u32> = (0..100).collect();
        let tree = KdTree::build(&store, &ids, 4, 3);
        let query = [3.1f32, 7.2];
        let mut cands = Vec::new();
        tree.candidates(&query, 20, &mut cands);
        assert!(cands.len() >= 4);
        // Best candidate among the returned ones must be close to the true
        // NN (grid point (3,7), distance^2 = 0.01+0.04).
        let best =
            cands.iter().map(|&id| l2_sq(&query, store.get(id))).fold(f32::INFINITY, f32::min);
        assert!(best <= 0.5, "best returned candidate too far: {best}");
    }

    #[test]
    fn forest_candidates_deduplicated() {
        let store = grid_store();
        let forest = KdForest::build(&store, 4, 8, 7);
        let cands = forest.candidates(&[5.0, 5.0], 30);
        let mut sorted = cands.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), cands.len(), "duplicates leaked");
        assert!(!cands.is_empty());
    }

    #[test]
    fn forest_is_a_seed_provider() {
        let store = grid_store();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let forest = KdForest::build(&store, 2, 8, 11);
        let mut out = Vec::new();
        forest.seeds(space, &[0.0, 0.0], 10, &mut out);
        assert!(!out.is_empty());
        assert_eq!(forest.label(), "KD");
        // Descent itself computes no full distances.
        assert_eq!(counter.get(), 0);
    }

    #[test]
    fn single_point_tree() {
        let mut s = VectorStore::new(2);
        s.push(&[1.0, 2.0]);
        let tree = KdTree::build(&s, &[0], 4, 0);
        let mut out = Vec::new();
        tree.candidates(&[0.0, 0.0], 5, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn constant_coordinate_does_not_loop() {
        // All points identical: splits degenerate, must terminate as leaf.
        let mut s = VectorStore::new(3);
        for _ in 0..50 {
            s.push(&[1.0, 1.0, 1.0]);
        }
        let ids: Vec<u32> = (0..50).collect();
        let tree = KdTree::build(&s, &ids, 4, 5);
        let total: usize = tree.leaves().iter().map(|l| l.len()).sum();
        assert_eq!(total, 50);
    }
}
