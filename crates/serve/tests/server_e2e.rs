//! End-to-end server tests over real sockets: a server on an ephemeral
//! port, clients speaking the actual wire protocol, and the control paths
//! (overload shedding, deadlines, bad requests, orderly shutdown) that
//! the CLI smoke test doesn't reach.

use gass_core::distance::DistCounter;
use gass_core::index::{AnnIndex, QueryParams};
use gass_graphs::{HnswIndex, HnswParams};
use gass_serve::{serve, Client, QueryRequest, Response, ServeConfig, Status};
use std::sync::Arc;

const N: usize = 2_000;
const DIM: usize = 12;
const K: usize = 5;

fn build_index() -> Arc<HnswIndex> {
    let base = gass_data::synth::manifold_mixture(N, DIM, 8, 16, 0.5, 0.1, 42);
    let mut idx =
        HnswIndex::build(base, HnswParams { m: 8, ef_construction: 64, seed: 42, threads: 2 });
    idx.freeze();
    idx.align_store();
    Arc::new(idx)
}

fn start(cfg: ServeConfig) -> (Arc<HnswIndex>, gass_serve::ServerHandle) {
    let index = build_index();
    let handle = serve(index.clone(), cfg).expect("bind ephemeral port");
    (index, handle)
}

#[test]
fn served_answers_match_direct_search_bit_for_bit() {
    let (index, handle) = start(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ping().unwrap();

    let queries = gass_data::synth::manifold_mixture(8, DIM, 8, 16, 0.5, 0.1, 43);
    let params = QueryParams::new(K, 32);
    let counter = DistCounter::new();
    for qi in 0..queries.len() as u32 {
        let q = queries.get(qi);
        let expected = index.search(q, &params, &counter);
        match client.query_simple(q, K, 32).unwrap() {
            Response::Neighbors(got) => {
                assert_eq!(got.len(), expected.neighbors.len());
                for ((gid, gdist), en) in got.iter().zip(&expected.neighbors) {
                    assert_eq!(*gid, en.id);
                    assert_eq!(gdist.to_bits(), en.dist.to_bits());
                }
            }
            other => panic!("expected neighbors, got {other:?}"),
        }
    }

    let stats = handle.stats();
    assert_eq!(stats.completed, queries.len() as u64);
    assert_eq!(stats.overloaded, 0);
    assert!(stats.lat_count > 0);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let (index, handle) =
        start(ServeConfig { max_batch: 8, max_wait_us: 500, ..Default::default() });
    let addr = handle.addr();
    let queries = Arc::new(gass_data::synth::manifold_mixture(64, DIM, 8, 16, 0.5, 0.1, 44));
    let params = QueryParams::new(K, 32);

    let mut joins = Vec::new();
    for t in 0..8u32 {
        let index = index.clone();
        let queries = Arc::clone(&queries);
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let counter = DistCounter::new();
            for qi in (t * 8)..(t * 8 + 8) {
                let q = queries.get(qi);
                let expected = index.search(q, &params, &counter);
                match client.query_simple(q, K, 32).unwrap() {
                    Response::Neighbors(got) => {
                        let want: Vec<(u32, u32)> = expected
                            .neighbors
                            .iter()
                            .map(|n| (n.id, n.dist.to_bits()))
                            .collect();
                        let got: Vec<(u32, u32)> =
                            got.iter().map(|(id, d)| (*id, d.to_bits())).collect();
                        assert_eq!(got, want, "query {qi}");
                    }
                    other => panic!("expected neighbors, got {other:?}"),
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    let stats = handle.stats();
    assert_eq!(stats.completed, 64);
    assert_eq!(stats.admitted, 64);
    handle.shutdown();
    handle.join();
}

#[test]
fn admission_control_fast_rejects_beyond_queue_depth() {
    // No workers draining fast enough to matter: one worker, a deep
    // backlog of slow queries, and a queue depth of 2.
    let (_index, handle) = start(ServeConfig {
        workers: 1,
        max_batch: 1,
        max_wait_us: 0,
        queue_depth: 2,
        ..Default::default()
    });
    let addr = handle.addr();

    // Saturate: 16 concurrent single-query clients against depth 2.
    let mut joins = Vec::new();
    for t in 0..16u64 {
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let q = vec![0.01 * t as f32; DIM];
            match client.query(QueryRequest {
                k: K,
                beam_width: 256,
                seed_count: 48,
                rerank_factor: 4,
                deadline_us: 0,
                query: q,
            }) {
                Ok(Response::Neighbors(_)) => "ok",
                Ok(Response::Rejected { status: Status::Overloaded, .. }) => "shed",
                other => panic!("unexpected response {other:?}"),
            }
        }));
    }
    let outcomes: Vec<&str> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    let ok = outcomes.iter().filter(|o| **o == "ok").count();
    assert!(ok >= 1, "someone must be admitted: {outcomes:?}");
    // The shed path is timing-dependent; what matters is that every
    // request got a definite answer (no hangs, no errors) and the stats
    // agree with the outcomes.
    let stats = handle.stats();
    let shed = outcomes.iter().filter(|o| **o == "shed").count();
    assert_eq!(stats.completed, ok as u64);
    assert_eq!(stats.overloaded, shed as u64);
    handle.shutdown();
    handle.join();
}

#[test]
fn expired_deadlines_are_answered_without_searching() {
    let (_index, handle) =
        start(ServeConfig { workers: 1, max_batch: 4, max_wait_us: 0, ..Default::default() });
    let addr = handle.addr();
    // A 1µs deadline cannot survive queueing; the worker must answer
    // DeadlineExceeded without running the search.
    let mut client = Client::connect(addr).unwrap();
    let mut saw_expired = false;
    for _ in 0..32 {
        match client
            .query(QueryRequest {
                k: K,
                beam_width: 64,
                seed_count: 16,
                rerank_factor: 4,
                deadline_us: 1,
                query: vec![0.5; DIM],
            })
            .unwrap()
        {
            Response::Rejected { status: Status::DeadlineExceeded, .. } => saw_expired = true,
            Response::Neighbors(_) => {}
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(saw_expired, "a 1µs deadline should expire in queue at least once");
    assert!(handle.stats().expired > 0);
    handle.shutdown();
    handle.join();
}

#[test]
fn malformed_queries_are_rejected_not_fatal() {
    let (_index, handle) = start(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    // Wrong dimensionality.
    match client.query_simple(&[1.0, 2.0], K, 32).unwrap() {
        Response::Rejected { status: Status::BadRequest, detail } => {
            assert!(detail.contains("dim"), "detail: {detail}");
        }
        other => panic!("expected bad-request, got {other:?}"),
    }
    // k = 0.
    match client
        .query(QueryRequest {
            k: 0,
            beam_width: 8,
            seed_count: 4,
            rerank_factor: 1,
            deadline_us: 0,
            query: vec![0.0; DIM],
        })
        .unwrap()
    {
        Response::Rejected { status: Status::BadRequest, .. } => {}
        other => panic!("expected bad-request, got {other:?}"),
    }
    // The connection survives; a well-formed query still works.
    match client.query_simple(&[0.1; DIM], K, 32).unwrap() {
        Response::Neighbors(ns) => assert_eq!(ns.len(), K),
        other => panic!("expected neighbors, got {other:?}"),
    }
    assert_eq!(handle.stats().bad_requests, 2);
    handle.shutdown();
    handle.join();
}

#[test]
fn stats_endpoint_serves_well_formed_json() {
    let (_index, handle) = start(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    for _ in 0..3 {
        client.query_simple(&[0.2; DIM], K, 32).unwrap();
    }
    let json = client.stats().unwrap();
    for field in [
        "\"qps\":",
        "\"completed\":3",
        "\"overloaded\":0",
        "\"batch_size_counts\":",
        "\"latency_us\":",
        "\"p99\":",
        "\"queue_depth\":",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
    assert!(json.starts_with('{') && json.ends_with('}'));
    handle.shutdown();
    handle.join();
}

#[test]
fn wire_shutdown_drains_and_exits() {
    let (_index, handle) = start(ServeConfig::default());
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client.query_simple(&[0.3; DIM], K, 32).unwrap();
    client.shutdown().unwrap();
    assert!(handle.is_shutting_down());
    // New queries on a fresh connection are refused while draining (the
    // acceptor may also already be gone — both are acceptable).
    if let Ok(mut late) = Client::connect(addr) {
        match late.query_simple(&[0.3; DIM], K, 32) {
            Ok(Response::Rejected { status: Status::ShuttingDown, .. }) | Err(_) => {}
            Ok(other) => panic!("draining server answered a new query: {other:?}"),
        }
    }
    handle.join();
}
