//! Figure 17: implementation impact — the same graphs under different
//! engineering choices, standing in for the paper's original-vs-ParlayANN
//! comparison:
//!
//! * graph layout: flat contiguous slots (ParlayANN/hnswlib style) vs
//!   adjacency lists vs the frozen CSR serving form;
//! * priority queue: single sorted linear buffer (the paper's normalized
//!   choice) vs the original two-heap scheme;
//! * distance kernel: runtime-dispatched SIMD vs the scalar reference;
//! * vector layout: cache-line-aligned padded store vs packed;
//! * software prefetch of pending candidates: on vs off;
//! * graph reordering: RCM and hub-cluster relabelings of the CSR +
//!   aligned store, translated back to original ids;
//! * compressed serving: the SQ8 / SQ4 / PQ codec ladder with exact
//!   rerank.
//!
//! The scalar/prefetch rows ablate one serving-path optimization each from
//! the full `csr+aligned` configuration; recall and distance counts are
//! identical for every such variant (the optimizations are
//! layout/kernel-only), so wall-clock is the entire story. The final
//! codec rows traverse on quantized codes with an exact rerank — an
//! *approximation*, excluded from the identical-counts reading: their
//! recall may dip and their counts include the rerank.
//!
//! Paper shape: the optimized layouts win at low/mid recall where
//! traversal overhead dominates; the gap closes at high recall where
//! distance computation dominates.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig17_impl_opt
//! ```

use gass_bench::{beam_search_two_heaps, beam_sweep, num_queries, results_dir, tiers};
use gass_core::distance::{DistCounter, Space};
use gass_core::graph::{AdjacencyGraph, CsrGraph, GraphView};
use gass_core::search::{beam_search, SearchScratch};
use gass_core::visited::VisitedSet;
use gass_data::DatasetKind;
use gass_eval::{recall_at_k, Table};
use gass_graphs::{HnswIndex, HnswParams};

fn main() {
    let n = tiers()[1].n;
    let k = 10;
    let (base, queries) = DatasetKind::Deep.generate(n, num_queries(), 171);
    let truth = gass_data::ground_truth(&base, &queries, k);
    println!("Figure 17: implementation ablations on HNSW's base graph, n={n}\n");

    let index = HnswIndex::build(
        base.clone(),
        HnswParams { m: 12, ef_construction: 96, seed: 3, threads: 1 },
    );
    let flat = index.base_graph();
    // Rebuild the same edges as adjacency lists, and freeze them as CSR.
    let mut lists = AdjacencyGraph::new(n);
    for u in 0..n as u32 {
        lists.set_neighbors(u, flat.neighbors(u).to_vec());
    }
    let csr = CsrGraph::from_view(flat);
    let aligned_store = index.store().to_aligned();
    // Locality-preserving relabelings of the serving pair (CSR + aligned
    // store), seeded from the hierarchy's entry point like the library
    // path. Traversal runs in the new id space; results translate back.
    let entry_seed: Vec<u32> = index.hierarchy().entry_node().into_iter().collect();
    let reorderings: Vec<(&str, gass_core::IdRemap)> = [
        ("rcm", gass_core::ReorderStrategy::Rcm),
        ("hub", gass_core::ReorderStrategy::HubCluster),
    ]
    .into_iter()
    .map(|(label, s)| (label, gass_core::compute_permutation(&csr, s, &entry_seed)))
    .collect();
    let reordered: Vec<(&str, CsrGraph, gass_core::VectorStore)> = reorderings
        .iter()
        .map(|(label, map)| (*label, csr.permute(map), aligned_store.permute(map)))
        .collect();
    // Code stores for the quantization ablation rows (built once each;
    // the encodes are deterministic). One ladder rung per codec, with the
    // rerank sweep deepening as the code rate drops: SQ8 keeps 8 bits/dim,
    // SQ4 4 bits/dim, PQ at m = dim/6 just 0.67 bits/dim.
    let codecs: Vec<(gass_core::CodecSpec, Box<dyn gass_core::CodecStore>, Vec<usize>)> =
        gass_core::CodecSpec::ALL
            .into_iter()
            .map(|spec| {
                let reranks = match spec {
                    gass_core::CodecSpec::Pq { .. } => vec![8, 16],
                    _ => vec![2, 4],
                };
                (spec.resolve(base.dim()), spec.build(&aligned_store), reranks)
            })
            .collect();

    let counter = DistCounter::new();
    let space = Space::new(index.store(), &counter);
    let space_aligned = Space::new(&aligned_store, &counter);
    let mut scratch = SearchScratch::new(n, 512);
    let mut visited = VisitedSet::new(n);

    let mut table =
        Table::new(vec!["variant", "L", "recall", "ms_per_query", "dist_calcs_per_query"]);

    for l in beam_sweep() {
        // Entry seeds via the hierarchy (shared by all variants; its cost
        // is excluded from the timed section so the ablation isolates the
        // traversal engine).
        let entries: Vec<u32> = (0..queries.len() as u32)
            .map(|qi| index.hierarchy().descend(space, queries.get(qi)).unwrap_or(0))
            .collect();

        let mut run =
            |label: &str, f: &mut dyn FnMut(&[f32], u32) -> Vec<gass_core::Neighbor>| {
                counter.reset();
                let t = std::time::Instant::now();
                let mut recall = 0.0;
                for (qi, tr) in truth.iter().enumerate() {
                    let found = f(queries.get(qi as u32), entries[qi]);
                    recall += recall_at_k(tr, &found, k);
                }
                let secs = t.elapsed().as_secs_f64();
                table.row(vec![
                    label.to_string(),
                    l.to_string(),
                    format!("{:.4}", recall / truth.len() as f64),
                    format!("{:.3}", secs * 1e3 / truth.len() as f64),
                    (counter.get() / truth.len() as u64).to_string(),
                ]);
            };

        run("flat+linear (Opt)", &mut |q, e| {
            beam_search(flat, space, q, &[e], k, l, &mut scratch).neighbors
        });
        run("lists+linear", &mut |q, e| {
            beam_search(&lists, space, q, &[e], k, l, &mut scratch).neighbors
        });
        run("flat+two-heaps (original)", &mut |q, e| {
            beam_search_two_heaps(flat, space, q, &[e], k, l, &mut visited)
        });
        // Serving path (frozen CSR + aligned store), then ablate one
        // serving optimization per row. Recall and distance counts match
        // every row above: these change layout and kernels, not logic.
        run("csr+aligned (serving)", &mut |q, e| {
            beam_search(&csr, space_aligned, q, &[e], k, l, &mut scratch).neighbors
        });
        gass_core::set_simd_enabled(false);
        run("serving, scalar kernel", &mut |q, e| {
            beam_search(&csr, space_aligned, q, &[e], k, l, &mut scratch).neighbors
        });
        gass_core::set_simd_enabled(true);
        gass_core::set_prefetch_enabled(false);
        run("serving, no prefetch", &mut |q, e| {
            beam_search(&csr, space_aligned, q, &[e], k, l, &mut scratch).neighbors
        });
        gass_core::set_prefetch_enabled(true);
        // Reordering ablation: same traversal, relabeled layout. Results
        // translate back to original ids, so recall and distance counts
        // match the serving row exactly; only cache behavior changes.
        for ((label, map), (_, rcsr, rstore)) in reorderings.iter().zip(&reordered) {
            let space_r = Space::new(rstore, &counter);
            run(&format!("serving, reorder={label}"), &mut |q, e| {
                let mut found =
                    beam_search(rcsr, space_r, q, &[map.to_new(e)], k, l, &mut scratch)
                        .neighbors;
                for nb in &mut found {
                    nb.id = map.to_old(nb.id);
                }
                found
            });
        }
        // Quantization ablation: code-space traversal with exact rerank on
        // top of the serving configuration, one rung per codec. Unlike
        // every row above, these rows are *approximate* — traversal runs
        // on codes, so recall and distance counts are allowed to differ;
        // the rerank factor trades f32 re-scores for recall recovery and
        // the sweep deepens as the code rate drops.
        for (spec, qstore, reranks) in &codecs {
            for &rerank in reranks {
                let space_quant = space_aligned
                    .with_quant(Some(gass_core::QuantView::new(qstore.as_ref(), rerank)));
                run(&format!("serving, {spec} rerank={rerank}"), &mut |q, e| {
                    beam_search(&csr, space_quant, q, &[e], k, l, &mut scratch).neighbors
                });
            }
        }
        eprintln!("done: L={l}");
    }

    table.emit(&results_dir(), "fig17_impl_opt").expect("write results");
    println!(
        "Read as Fig. 17: at equal L all exact variants see identical \
         recall and distance counts; wall-clock separates the engineering. \
         The flat layout should lead at small L; the gap narrows as L \
         grows. The serving rows isolate the kernel (SIMD vs scalar), the \
         store layout, and the prefetch contribution; the scalar-kernel \
         ablation should dominate at high L where distance work does. The \
         codec-ladder rows are approximate (quantized traversal + exact \
         rerank) and trade a recall dip — growing as the code rate drops \
         from sq8 to sq4 to pq — for bandwidth."
    );
}
