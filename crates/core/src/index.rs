//! The common index interface every method implements, and the scratch
//! pool that makes concurrent querying allocation-free.
//!
//! The paper evaluates twelve methods under one procedure: build, then
//! answer k-NN queries at a given beam width while counting distance
//! calculations. [`AnnIndex`] is that procedure's contract; the evaluation
//! harness (`gass-eval`) and every figure/table bin are generic over it.

use crate::distance::{DistCounter, Space};
use crate::search::{SearchResult, SearchScratch};
use std::sync::Mutex;

/// Per-query parameters.
#[derive(Clone, Copy, Debug)]
pub struct QueryParams {
    /// Number of nearest neighbors to return.
    pub k: usize,
    /// Beam width `L` (candidate buffer size); must be `>= k`.
    pub beam_width: usize,
    /// Number of seeds to request from the seed-selection strategy
    /// (meaningful for KS/KD/KM/LSH; structure-determined for SN/MD/SF).
    pub seed_count: usize,
    /// When the index is quantized ([`AnnIndex::quantize`]), the exact
    /// rerank pool is `rerank_factor * k` candidates (values below 1
    /// behave as 1). Ignored on full-precision indexes.
    pub rerank_factor: usize,
    /// When the traversal stops expanding candidates
    /// ([`crate::term::TerminationPolicy::Fixed`] = the paper's fixed-beam
    /// behavior, bit-identical by construction). Adaptive policies let
    /// easy queries stop as soon as their own top-`k` converges, so
    /// `beam_width` becomes a cap instead of a constant cost.
    pub term: crate::term::TerminationPolicy,
    /// Hard per-query distance-evaluation budget (`0` = unlimited); see
    /// [`crate::term::Termination::max_dists`].
    pub max_dists: usize,
}

impl QueryParams {
    /// `k`-NN with beam width `l`, `k` seeds and a 4× rerank pool.
    /// Termination defaults to `Fixed` unless a `GASS_TERM` /
    /// `GASS_MAX_DISTS` override is set (see [`crate::term::term_forced`]).
    pub fn new(k: usize, l: usize) -> Self {
        let forced = crate::term::term_forced().unwrap_or(crate::term::Termination::FIXED);
        Self {
            k,
            beam_width: l.max(k),
            seed_count: k,
            rerank_factor: 4,
            term: forced.policy,
            max_dists: forced.max_dists,
        }
    }

    /// Overrides the seed count.
    pub fn with_seed_count(mut self, seeds: usize) -> Self {
        self.seed_count = seeds;
        self
    }

    /// Overrides the quantized-serving rerank pool multiplier.
    pub fn with_rerank_factor(mut self, rerank_factor: usize) -> Self {
        self.rerank_factor = rerank_factor;
        self
    }

    /// Overrides the termination policy.
    pub fn with_term(mut self, term: crate::term::TerminationPolicy) -> Self {
        self.term = term;
        self
    }

    /// Overrides the hard distance-evaluation budget (`0` = unlimited).
    pub fn with_max_dists(mut self, max_dists: usize) -> Self {
        self.max_dists = max_dists;
        self
    }

    /// The policy + budget pair the traversal variants consume.
    pub fn termination(&self) -> crate::term::Termination {
        crate::term::Termination { policy: self.term, max_dists: self.max_dists }
    }
}

/// Structural statistics of a built index (Figures 8–9 inputs).
#[derive(Clone, Copy, Debug, Default)]
pub struct IndexStats {
    /// Number of graph nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Average out-degree.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Heap bytes used by graph structures.
    pub graph_bytes: usize,
    /// Heap bytes used by auxiliary structures (seed trees, hash tables,
    /// hierarchical layers, summarizations).
    pub aux_bytes: usize,
}

/// A built approximate-nearest-neighbor index.
///
/// Implementations own their `VectorStore`; the query-time distance counter
/// is passed per call so experiments can account per-phase.
pub trait AnnIndex: Send + Sync {
    /// Method name as it appears in the paper's tables ("HNSW", "NSG", ...).
    fn name(&self) -> String;

    /// Number of indexed vectors.
    fn num_vectors(&self) -> usize;

    /// Vector dimensionality.
    fn dim(&self) -> usize;

    /// Answers one k-NN query.
    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult;

    /// Answers a group of k-NN queries sharing `params`, in query order.
    ///
    /// The default is the sequential per-query loop. Indexes with a
    /// coalesced execution engine override it —
    /// [`PrebuiltIndex`] interleaves up to
    /// [`crate::search::COALESCE_LANES`] quantized searches in lockstep
    /// on the calling thread (see
    /// [`crate::search::beam_search_coalesced`]), hiding each query's
    /// dependent memory latency under the other lanes' compute. Every
    /// implementation must answer bit-identically to the sequential
    /// loop: coalescing is an execution strategy, not a semantic change.
    fn search_coalesced(
        &self,
        queries: &[&[f32]],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> Vec<SearchResult> {
        queries.iter().map(|q| self.search(q, params, counter)).collect()
    }

    /// Structural statistics.
    fn stats(&self) -> IndexStats;

    /// Total heap bytes of the index *excluding* the raw vectors (graph +
    /// auxiliary structures). The harness adds the store separately, as the
    /// paper reports footprints "including the raw data".
    fn index_bytes(&self) -> usize {
        let s = self.stats();
        s.graph_bytes + s.aux_bytes
    }

    /// Freezes the index for serving: converts its traversal graph(s) into
    /// the contiguous CSR layout ([`crate::graph::CsrGraph`]) so queries
    /// stop chasing per-node `Vec` pointers. Idempotent, and a no-op for
    /// indexes with nothing to freeze (e.g. the serial scan). Search
    /// results are identical before and after — only memory layout (and
    /// hence speed) changes.
    fn freeze(&mut self) {}

    /// `true` once [`Self::freeze`] has taken effect (always `false` for
    /// indexes with nothing to freeze).
    fn is_frozen(&self) -> bool {
        false
    }

    /// Builds a compressed [`crate::quant::CodecStore`] (SQ8, SQ4 or PQ
    /// per `spec`) over the index's vectors and routes subsequent
    /// traversals through code-space distances with an exact
    /// `rerank_factor * k` re-scoring pool (see
    /// [`QueryParams::rerank_factor`]). Idempotent when the installed
    /// codec already matches the resolved spec — a different family or PQ
    /// geometry re-encodes — and a no-op for indexes without a quantizable
    /// traversal (e.g. the serial scan). Returned distances stay exact
    /// either way.
    fn quantize(&mut self, _spec: crate::quant::CodecSpec) {}

    /// `true` once [`Self::quantize`] has taken effect (always `false`
    /// for indexes with nothing to quantize).
    fn is_quantized(&self) -> bool {
        false
    }

    /// Relabels the serving state with a locality-preserving permutation
    /// (see [`crate::reorder`]): forces a [`Self::freeze`], permutes the
    /// CSR graph, the vector rows, and the SQ8 codes together, and remaps
    /// the method's seed structures. Search results keep reporting
    /// *original* ids; with [`crate::reorder::ReorderStrategy::None`] the
    /// call is a no-op and the index stays bit-identical. A no-op for
    /// indexes with nothing to reorder (e.g. the serial scan).
    fn reorder(&mut self, _strategy: crate::reorder::ReorderStrategy) {}

    /// `true` once a non-`None` [`Self::reorder`] has taken effect.
    fn is_reordered(&self) -> bool {
        false
    }

    /// The strategy last applied through [`Self::reorder`]
    /// ([`crate::reorder::ReorderStrategy::None`] if never reordered).
    fn reorder_strategy(&self) -> crate::reorder::ReorderStrategy {
        crate::reorder::ReorderStrategy::None
    }
}

/// Minimum shard count in a [`ScratchPool`]: the historical default, kept
/// as a floor so small hosts still spread borrow traffic across several
/// mutexes.
const SCRATCH_SHARDS_MIN: usize = 8;

/// Lock-striped pool of [`SearchScratch`] buffers so concurrent searches
/// do not allocate an `O(n)` visited set per query — and do not serialize
/// on a single lock while borrowing one.
///
/// The stripe count is sized from the host's worker count (every core may
/// host a serving thread), with a floor of 8 — a fixed stripe count would
/// re-introduce borrow contention as soon as `--threads` exceeds it.
/// [`ScratchPool::with_shards`] pins an explicit count (the serve-crate
/// executors use one stripe per worker).
///
/// Each thread hashes its id to a *home shard* and borrows/returns there,
/// so under the parallel serving mode ([`search_batch_parallel`]) distinct
/// threads almost always touch distinct mutexes. Borrowing falls back to
/// scanning the other shards (`try_lock`, never blocking) before
/// allocating fresh scratch.
#[derive(Debug)]
pub struct ScratchPool {
    shards: Vec<Mutex<Vec<SearchScratch>>>,
}

impl Default for ScratchPool {
    fn default() -> Self {
        Self::with_shards(crate::par::effective_threads(0))
    }
}

/// The calling thread's id hash (computed once, cached); each pool
/// reduces it modulo its own stripe count.
fn thread_hash() -> usize {
    use std::hash::{Hash, Hasher};
    thread_local! {
        static HASH: usize = {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            h.finish() as usize
        };
    }
    HASH.with(|&s| s)
}

thread_local! {
    static HOME_OVERRIDE: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
    /// Per-thread lane scratches for [`AnnIndex::search_coalesced`]: the
    /// interleaved engine needs one scratch per in-flight lane, and the
    /// long-lived serving workers that call it keep these warm across
    /// batches.
    static LANE_SCRATCH: std::cell::RefCell<Vec<SearchScratch>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Pins the calling thread's [`ScratchPool`] home shard to `shard`
/// (reduced modulo each pool's stripe count) instead of the default
/// thread-id hash. Long-lived executor threads (the `gass-serve` workers)
/// call this once at startup with their worker index, guaranteeing
/// distinct home stripes — the hash only makes collisions unlikely.
pub fn pin_scratch_home(shard: usize) {
    HOME_OVERRIDE.with(|c| c.set(Some(shard)));
}

impl ScratchPool {
    /// A pool striped for the host's worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// A pool with exactly `max(workers, 8)` stripes — one per expected
    /// concurrent borrower.
    pub fn with_shards(workers: usize) -> Self {
        let n = workers.max(SCRATCH_SHARDS_MIN);
        Self { shards: (0..n).map(|_| Mutex::new(Vec::new())).collect() }
    }

    /// Number of stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Borrows a scratch (allocating one only when every shard is busy or
    /// empty), prepared for `n` nodes and beam width `l`, runs `f`, and
    /// returns the scratch to the calling thread's home shard.
    pub fn with<R>(&self, n: usize, l: usize, f: impl FnOnce(&mut SearchScratch) -> R) -> R {
        let shards = self.shards.len();
        let home = HOME_OVERRIDE.with(|c| c.get()).unwrap_or_else(thread_hash) % shards;
        let mut scratch = None;
        for off in 0..shards {
            if let Ok(mut shard) = self.shards[(home + off) % shards].try_lock() {
                if let Some(s) = shard.pop() {
                    scratch = Some(s);
                    break;
                }
            }
        }
        let mut scratch = scratch.unwrap_or_else(|| SearchScratch::new(n, l));
        scratch.prepare(n, l);
        let out = f(&mut scratch);
        // Return to the home shard; the critical sections are a push/pop,
        // so blocking here (only if try_lock loses a race) is momentary.
        match self.shards[home].try_lock() {
            Ok(mut shard) => shard.push(scratch),
            Err(_) => self.shards[home].lock().unwrap().push(scratch),
        }
        out
    }
}

/// Convenience: evaluate recall-oriented searches over a whole query set,
/// returning per-query results. Sequential on purpose — the paper processes
/// queries one at a time, "mimicking a real-world scenario where queries
/// are unpredictable".
pub fn search_batch<I: AnnIndex + ?Sized>(
    index: &I,
    queries: &crate::store::VectorStore,
    params: &QueryParams,
    counter: &DistCounter,
) -> Vec<SearchResult> {
    (0..queries.len() as u32).map(|q| index.search(queries.get(q), params, counter)).collect()
}

/// Parallel serving mode: answers the whole query set across `threads`
/// worker threads (`0` = all cores), returning results in query order.
///
/// This is an explicit opt-in for throughput-oriented serving — the
/// paper's evaluation methodology stays the sequential [`search_batch`].
/// Per-query results and the final [`DistCounter`] totals are identical to
/// the sequential batch (searches are read-only and independent); only
/// interleaving differs. Worker threads share the index's [`ScratchPool`],
/// whose lock striping keeps the borrow/return traffic off a single
/// mutex.
pub fn search_batch_parallel<I: AnnIndex + ?Sized>(
    index: &I,
    queries: &crate::store::VectorStore,
    params: &QueryParams,
    counter: &DistCounter,
    threads: usize,
) -> Vec<SearchResult> {
    crate::par::par_map(threads, queries.len(), |q| {
        index.search(queries.get(q as u32), params, counter)
    })
}

/// A trivial exact index: serial scan. Implements [`AnnIndex`] so the
/// figure harnesses can include the exact baseline uniformly.
pub struct SerialScanIndex {
    store: crate::store::VectorStore,
}

impl SerialScanIndex {
    /// Wraps a store.
    pub fn new(store: crate::store::VectorStore) -> Self {
        Self { store }
    }
}

impl AnnIndex for SerialScanIndex {
    fn name(&self) -> String {
        "SerialScan".to_string()
    }

    fn num_vectors(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        let space = Space::new(&self.store, counter);
        let neighbors = crate::search::serial_scan(space, query, params.k);
        let n = self.store.len();
        SearchResult { neighbors, stats: crate::search::SearchStats { hops: 0, evaluated: n } }
    }

    fn stats(&self) -> IndexStats {
        IndexStats { nodes: self.store.len(), ..Default::default() }
    }
}

/// An index assembled from previously built (e.g. persisted) parts: a
/// vector store, a frozen graph, and a seed provider. Lets any saved
/// graph be served again without re-running construction.
pub struct PrebuiltIndex {
    store: crate::store::VectorStore,
    graph: crate::graph::FlatGraph,
    serving: crate::reorder::ServingState,
    seeds: Box<dyn crate::seed::SeedProvider>,
    label: String,
    scratch: ScratchPool,
}

impl PrebuiltIndex {
    /// Wraps the parts. `label` names the method the graph came from.
    ///
    /// # Panics
    /// Panics if the graph and store disagree on the number of vectors.
    pub fn new(
        store: crate::store::VectorStore,
        graph: crate::graph::FlatGraph,
        seeds: Box<dyn crate::seed::SeedProvider>,
        label: impl Into<String>,
    ) -> Self {
        use crate::graph::GraphView;
        assert_eq!(
            store.len(),
            graph.num_nodes(),
            "store and graph must cover the same vectors"
        );
        Self {
            store,
            graph,
            serving: crate::reorder::ServingState::new(),
            seeds,
            label: label.into(),
            scratch: ScratchPool::new(),
        }
    }

    /// Installs a previously loaded code store (the persisted form),
    /// replacing any present one.
    ///
    /// # Panics
    /// Panics if it does not match the wrapped store's shape.
    pub fn set_quantized(&mut self, quant: Box<dyn crate::quant::CodecStore>) {
        assert_eq!(quant.len(), self.store.len(), "quantized store length mismatch");
        assert_eq!(quant.dim(), self.store.dim(), "quantized store dimension mismatch");
        self.serving.set_quant(quant);
    }

    /// The code store, once [`AnnIndex::quantize`] (or
    /// [`Self::set_quantized`]) has run.
    pub fn quantized(&self) -> Option<&dyn crate::quant::CodecStore> {
        self.serving.quant()
    }

    /// The shared serving state (frozen CSR / compressed codes / id remap).
    pub fn serving(&self) -> &crate::reorder::ServingState {
        &self.serving
    }

    /// The wrapped store.
    pub fn store(&self) -> &crate::store::VectorStore {
        &self.store
    }

    /// Re-lays the wrapped store out cache-line aligned (see
    /// [`crate::store::VectorStore::to_aligned`]).
    pub fn align_store(&mut self) {
        if !self.store.is_aligned() {
            self.store = self.store.to_aligned();
        }
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &crate::graph::FlatGraph {
        &self.graph
    }

    /// [`AnnIndex::search`] through a caller-owned scratch instead of the
    /// index's [`ScratchPool`]. The sharded fan-out path keeps one
    /// scratch per executor thread and reuses it across probes, shards,
    /// and batches — no per-probe pool borrow/return, and identical
    /// results (scratch contents never influence the traversal; they are
    /// epoch-cleared and reset by `prepare`).
    pub fn search_with_scratch(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
        scratch: &mut SearchScratch,
    ) -> SearchResult {
        scratch.prepare(self.store.len(), params.beam_width);
        self.search_prepared(query, params, counter, scratch)
    }

    /// The search body shared by the pool and caller-scratch entry
    /// points; expects `scratch` already prepared for this index's size.
    fn search_prepared(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
        scratch: &mut SearchScratch,
    ) -> SearchResult {
        let space =
            Space::new(&self.store, counter).with_quant(self.serving.quant_view(params));
        let mut seeds = Vec::new();
        self.seeds.seeds(space, query, params.seed_count, &mut seeds);
        // Match on the frozen layout outside the traversal so both
        // arms monomorphize (no virtual dispatch per neighbor list).
        let res = match self.serving.csr() {
            Some(csr) => crate::search::beam_search_terminated(
                csr,
                space,
                query,
                &seeds,
                params.k,
                params.beam_width,
                scratch,
                params.termination(),
            ),
            None => crate::search::beam_search_terminated(
                &self.graph,
                space,
                query,
                &seeds,
                params.k,
                params.beam_width,
                scratch,
                params.termination(),
            ),
        };
        self.serving.finish(res)
    }
}

impl AnnIndex for PrebuiltIndex {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn num_vectors(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        self.scratch.with(self.store.len(), params.beam_width, |scratch| {
            self.search_prepared(query, params, counter, scratch)
        })
    }

    fn search_coalesced(
        &self,
        queries: &[&[f32]],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> Vec<SearchResult> {
        let space =
            Space::new(&self.store, counter).with_quant(self.serving.quant_view(params));
        if queries.len() < 2 || space.quant().is_none() {
            // Nothing to interleave (or full-precision serving, whose
            // in-query prefetching already covers its latency): the
            // sequential loop is the same work.
            return queries.iter().map(|q| self.search(q, params, counter)).collect();
        }
        let n = self.store.len();
        let mut out = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(crate::search::COALESCE_LANES) {
            // Seeds are drawn per query in order, exactly as the
            // sequential loop would (per-query-keyed providers make this
            // order-independent anyway).
            let seeds: Vec<Vec<u32>> = chunk
                .iter()
                .map(|q| {
                    let mut s = Vec::new();
                    self.seeds.seeds(space, q, params.seed_count, &mut s);
                    s
                })
                .collect();
            LANE_SCRATCH.with(|cell| {
                let mut lanes = cell.borrow_mut();
                while lanes.len() < chunk.len() {
                    lanes.push(SearchScratch::new(n, params.beam_width));
                }
                let res = match self.serving.csr() {
                    Some(csr) => crate::search::beam_search_coalesced(
                        csr,
                        space,
                        chunk,
                        &seeds,
                        params.k,
                        params.beam_width,
                        &mut lanes[..chunk.len()],
                        params.termination(),
                    ),
                    None => crate::search::beam_search_coalesced(
                        &self.graph,
                        space,
                        chunk,
                        &seeds,
                        params.k,
                        params.beam_width,
                        &mut lanes[..chunk.len()],
                        params.termination(),
                    ),
                };
                for r in res {
                    out.push(self.serving.finish(r));
                }
            });
        }
        out
    }

    fn freeze(&mut self) {
        self.serving.freeze(&self.graph);
    }

    fn is_frozen(&self) -> bool {
        self.serving.is_frozen()
    }

    fn quantize(&mut self, spec: crate::quant::CodecSpec) {
        self.serving.quantize(&self.store, spec);
    }

    fn is_quantized(&self) -> bool {
        self.serving.is_quantized()
    }

    fn reorder(&mut self, strategy: crate::reorder::ReorderStrategy) {
        if let Some(map) = self.serving.reorder(&self.graph, &mut self.store, strategy, &[]) {
            self.seeds.reorder(&map);
        }
    }

    fn is_reordered(&self) -> bool {
        self.serving.is_reordered()
    }

    fn reorder_strategy(&self) -> crate::reorder::ReorderStrategy {
        self.serving.strategy()
    }

    fn stats(&self) -> IndexStats {
        use crate::graph::GraphView;
        IndexStats {
            nodes: self.graph.num_nodes(),
            edges: self.graph.num_edges(),
            avg_degree: self.graph.avg_degree(),
            max_degree: self.graph.max_degree(),
            graph_bytes: self.graph.heap_bytes() + self.serving.graph_bytes(),
            aux_bytes: self.serving.aux_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::VectorStore;

    #[test]
    fn query_params_enforce_l_ge_k() {
        let p = QueryParams::new(10, 3);
        assert_eq!(p.beam_width, 10);
        let p2 = QueryParams::new(2, 50).with_seed_count(7);
        assert_eq!(p2.beam_width, 50);
        assert_eq!(p2.seed_count, 7);
    }

    #[test]
    fn scratch_pool_reuses_buffers() {
        let pool = ScratchPool::new();
        let cap1 = pool.with(100, 8, |s| {
            s.visited.insert(3);
            s.visited.capacity()
        });
        // Second borrow must see a cleared set of at least same capacity.
        pool.with(50, 8, |s| {
            assert!(s.visited.capacity() >= cap1.min(100));
            assert!(!s.visited.contains(3));
        });
    }

    #[test]
    fn serial_scan_index_is_exact() {
        let store = VectorStore::from_flat(1, vec![0.0, 5.0, 10.0, 2.0]);
        let idx = SerialScanIndex::new(store);
        let counter = DistCounter::new();
        let res = idx.search(&[1.4], &QueryParams::new(2, 2), &counter);
        assert_eq!(res.neighbors[0].id, 3); // 2.0 is closest to 1.4
        assert_eq!(res.neighbors[1].id, 0);
        assert_eq!(counter.get(), 4);
        assert_eq!(idx.name(), "SerialScan");
        assert_eq!(idx.num_vectors(), 4);
        assert_eq!(idx.dim(), 1);
    }

    #[test]
    fn prebuilt_index_serves_a_frozen_graph() {
        let store = VectorStore::from_flat(1, (0..20).map(|i| i as f32).collect());
        let mut adj = crate::graph::AdjacencyGraph::new(20);
        for i in 0..19u32 {
            adj.add_undirected(i, i + 1);
        }
        let graph = crate::graph::FlatGraph::from_adjacency(&adj, None);
        let idx = PrebuiltIndex::new(
            store,
            graph,
            Box::new(crate::seed::StaticSeeds::new(vec![0])),
            "chain",
        );
        let counter = DistCounter::new();
        let res = idx.search(&[13.4], &QueryParams::new(2, 20), &counter);
        assert_eq!(res.neighbors[0].id, 13);
        assert_eq!(idx.name(), "chain");
        assert_eq!(idx.stats().edges, 38);
    }

    #[test]
    #[should_panic(expected = "same vectors")]
    fn prebuilt_index_rejects_mismatched_parts() {
        let store = VectorStore::from_flat(1, vec![0.0, 1.0]);
        let adj = crate::graph::AdjacencyGraph::new(5);
        let graph = crate::graph::FlatGraph::from_adjacency(&adj, None);
        let _ = PrebuiltIndex::new(
            store,
            graph,
            Box::new(crate::seed::StaticSeeds::new(vec![0])),
            "bad",
        );
    }

    #[test]
    fn search_batch_runs_all_queries() {
        let store = VectorStore::from_flat(1, vec![0.0, 1.0, 2.0]);
        let idx = SerialScanIndex::new(store);
        let queries = VectorStore::from_flat(1, vec![0.1, 1.9]);
        let counter = DistCounter::new();
        let res = search_batch(&idx, &queries, &QueryParams::new(1, 1), &counter);
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].neighbors[0].id, 0);
        assert_eq!(res[1].neighbors[0].id, 2);
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let store = VectorStore::from_flat(1, (0..50).map(|i| i as f32).collect());
        let idx = SerialScanIndex::new(store);
        let queries =
            VectorStore::from_flat(1, (0..17).map(|i| i as f32 * 2.9 + 0.3).collect());
        let params = QueryParams::new(3, 3);
        let counter_seq = DistCounter::new();
        let seq = search_batch(&idx, &queries, &params, &counter_seq);
        let counter_par = DistCounter::new();
        let par = search_batch_parallel(&idx, &queries, &params, &counter_par, 4);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.neighbors, p.neighbors);
        }
        assert_eq!(counter_seq.get(), counter_par.get());
    }

    #[test]
    fn scratch_pool_striping_survives_concurrent_borrows() {
        let pool = ScratchPool::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for i in 0..100u32 {
                        pool.with(64, 8, |s| {
                            assert!(s.visited.insert(i % 64));
                            assert!(!s.visited.insert(i % 64));
                        });
                    }
                });
            }
        });
        // Everything was returned: a fresh borrow sees cleared scratch.
        pool.with(64, 8, |s| assert!(!s.visited.contains(0)));
    }

    #[test]
    fn scratch_pool_stripes_scale_with_workers() {
        // The historical fixed 8 shards serialized borrows past 8 threads;
        // stripes now track the requested worker count (floored at 8).
        assert_eq!(ScratchPool::with_shards(1).num_shards(), 8);
        assert_eq!(ScratchPool::with_shards(8).num_shards(), 8);
        assert_eq!(ScratchPool::with_shards(32).num_shards(), 32);
        let host = crate::par::effective_threads(0);
        assert_eq!(ScratchPool::new().num_shards(), host.max(8));
    }

    #[test]
    fn prebuilt_index_reorder_reports_original_ids() {
        let store = VectorStore::from_flat(1, (0..20).map(|i| i as f32).collect());
        let mut adj = crate::graph::AdjacencyGraph::new(20);
        for i in 0..19u32 {
            adj.add_undirected(i, i + 1);
        }
        let graph = crate::graph::FlatGraph::from_adjacency(&adj, None);
        let mut idx = PrebuiltIndex::new(
            store,
            graph,
            Box::new(crate::seed::StaticSeeds::new(vec![0])),
            "chain",
        );
        let params = QueryParams::new(2, 20);
        let counter = DistCounter::new();
        let before = idx.search(&[13.4], &params, &counter);
        for strategy in crate::reorder::ReorderStrategy::ALL {
            idx.reorder(strategy);
            let after = idx.search(&[13.4], &params, &counter);
            assert_eq!(before.neighbors, after.neighbors, "{strategy}");
        }
        assert!(idx.is_reordered());
        assert!(idx.is_frozen(), "reorder must force a freeze");
        assert!(idx.stats().aux_bytes > 0, "remap tables must be accounted");
    }

    #[test]
    fn prebuilt_index_quantized_serving_stays_exact_distance() {
        let store = VectorStore::from_flat(1, (0..20).map(|i| i as f32).collect());
        let mut adj = crate::graph::AdjacencyGraph::new(20);
        for i in 0..19u32 {
            adj.add_undirected(i, i + 1);
        }
        let graph = crate::graph::FlatGraph::from_adjacency(&adj, None);
        let mut idx = PrebuiltIndex::new(
            store,
            graph,
            Box::new(crate::seed::StaticSeeds::new(vec![0])),
            "chain",
        );
        assert!(!idx.is_quantized());
        idx.quantize(crate::quant::CodecSpec::Sq8);
        idx.quantize(crate::quant::CodecSpec::Sq8); // idempotent per family
        assert!(idx.is_quantized());
        let counter = DistCounter::new();
        let res = idx.search(&[13.4], &QueryParams::new(2, 20), &counter);
        assert_eq!(res.neighbors[0].id, 13);
        assert!((res.neighbors[0].dist - 0.16).abs() < 1e-4, "{}", res.neighbors[0].dist);
        assert!(counter.get_u8() > counter.get_f32(), "traversal work must be quantized");
        assert!(idx.stats().aux_bytes > 0, "codes must be accounted in the footprint");
    }
}
