//! Neighbor candidates and the priority-queue structures used by beam
//! search.
//!
//! The paper normalizes all evaluated methods to use a **single sorted
//! linear buffer** as the beam-search priority queue (it modified HNSW and
//! ELPIS, which originally used two max-heaps, to match). We implement both
//! variants: [`SortedBuffer`] is the default used everywhere;
//! [`BoundedMaxHeap`] exists for the implementation-impact ablation
//! (Figure 17) and for result collection.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// A candidate neighbor: vector id plus (squared) distance to the query.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// Vector identifier.
    pub id: u32,
    /// Squared Euclidean distance to the query point.
    pub dist: f32,
}

impl Neighbor {
    /// Constructs a neighbor.
    #[inline]
    pub fn new(id: u32, dist: f32) -> Self {
        Self { id, dist }
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    /// Orders by distance, ties broken by id, treating NaN as greatest.
    /// Total order so neighbors can live in heaps and be sorted.
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .unwrap_or_else(|| match (self.dist.is_nan(), other.dist.is_nan()) {
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                _ => Ordering::Equal,
            })
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Fixed-capacity sorted array of candidates, closest first, with an
/// "expanded" flag per entry — the classic NSG/Vamana search pool.
///
/// Insertion is `O(L)` (binary search + memmove), which beats heap-based
/// queues for the small `L` (tens to a few thousand) used in beam search
/// because it is branch-predictable and cache-resident.
#[derive(Clone, Debug)]
pub struct SortedBuffer {
    entries: Vec<(Neighbor, bool)>,
    capacity: usize,
}

impl SortedBuffer {
    /// Creates an empty buffer that retains at most `capacity` candidates.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "beam width must be positive");
        Self { entries: Vec::with_capacity(capacity + 1), capacity }
    }

    /// Attempts to insert `n`; returns `true` if it was retained (i.e. it
    /// beat the current worst or the buffer had room). Duplicate ids are
    /// rejected.
    pub fn insert(&mut self, n: Neighbor) -> bool {
        if self.entries.len() == self.capacity && n >= self.entries[self.capacity - 1].0 {
            return false;
        }
        let pos = self.entries.partition_point(|(e, _)| *e < n);
        // Reject exact duplicates (same id) anywhere in the buffer.
        if self.entries.iter().any(|(e, _)| e.id == n.id) {
            return false;
        }
        self.entries.insert(pos, (n, false));
        if self.entries.len() > self.capacity {
            self.entries.pop();
        }
        true
    }

    /// Index of the closest not-yet-expanded entry, if any.
    pub fn next_unexpanded(&mut self) -> Option<Neighbor> {
        for (n, expanded) in self.entries.iter_mut() {
            if !*expanded {
                *expanded = true;
                return Some(*n);
            }
        }
        None
    }

    /// Current number of retained candidates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no candidates are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The current worst retained distance, or `f32::INFINITY` while the
    /// buffer is not yet full. Used as the beam-search pruning bound.
    pub fn bound(&self) -> f32 {
        if self.entries.len() < self.capacity {
            f32::INFINITY
        } else {
            self.entries[self.capacity - 1].0.dist
        }
    }

    /// The `k` closest candidates, closest first.
    pub fn top_k(&self, k: usize) -> Vec<Neighbor> {
        self.entries.iter().take(k).map(|(n, _)| *n).collect()
    }

    /// The `k`-th closest retained candidate (1-indexed), or `None` when
    /// fewer than `k` are retained. `kth(k)` is the current worst of the
    /// would-be result set — the reference distance adaptive termination
    /// policies compare the frontier against.
    #[inline]
    pub fn kth(&self, k: usize) -> Option<Neighbor> {
        if k == 0 || self.entries.len() < k {
            None
        } else {
            Some(self.entries[k - 1].0)
        }
    }

    /// All retained candidates, closest first.
    pub fn as_neighbors(&self) -> Vec<Neighbor> {
        self.entries.iter().map(|(n, _)| *n).collect()
    }

    /// Clears the buffer, keeping its allocation (workhorse reuse across
    /// queries).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Resets the retained-candidate capacity (and clears).
    pub fn reset(&mut self, capacity: usize) {
        assert!(capacity > 0, "beam width must be positive");
        self.capacity = capacity;
        self.entries.clear();
    }
}

/// Bounded max-heap keeping the `k` smallest neighbors seen.
///
/// Root is the current worst retained candidate, so `peek_worst` gives the
/// pruning bound in `O(1)`. This is the queue HNSW's original
/// implementation used; the paper replaced it with the linear buffer for
/// fairness, and our Figure-17 ablation compares the two.
#[derive(Clone, Debug, Default)]
pub struct BoundedMaxHeap {
    heap: std::collections::BinaryHeap<Neighbor>,
    capacity: usize,
}

impl BoundedMaxHeap {
    /// Creates a heap retaining at most `capacity` smallest items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "heap capacity must be positive");
        Self { heap: std::collections::BinaryHeap::with_capacity(capacity + 1), capacity }
    }

    /// Offers a neighbor; keeps only the `capacity` smallest. Returns
    /// `true` if retained.
    pub fn push(&mut self, n: Neighbor) -> bool {
        if self.heap.len() < self.capacity {
            self.heap.push(n);
            true
        } else if let Some(worst) = self.heap.peek() {
            if n < *worst {
                self.heap.pop();
                self.heap.push(n);
                true
            } else {
                false
            }
        } else {
            false
        }
    }

    /// The current worst retained distance, or `f32::INFINITY` while not
    /// full.
    pub fn bound(&self) -> f32 {
        if self.heap.len() < self.capacity {
            f32::INFINITY
        } else {
            self.heap.peek().map_or(f32::INFINITY, |n| n.dist)
        }
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the heap, returning neighbors sorted closest first.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: u32, d: f32) -> Neighbor {
        Neighbor::new(id, d)
    }

    #[test]
    fn neighbor_ordering_by_distance_then_id() {
        assert!(n(5, 1.0) < n(1, 2.0));
        assert!(n(1, 1.0) < n(2, 1.0));
        assert!(n(7, f32::NAN) > n(1, 1e30));
    }

    #[test]
    fn sorted_buffer_keeps_closest() {
        let mut b = SortedBuffer::new(3);
        assert!(b.insert(n(0, 5.0)));
        assert!(b.insert(n(1, 1.0)));
        assert!(b.insert(n(2, 3.0)));
        assert!(b.insert(n(3, 2.0))); // evicts id 0
        assert!(!b.insert(n(4, 9.0))); // too far
        let top = b.top_k(3);
        assert_eq!(top.iter().map(|x| x.id).collect::<Vec<_>>(), vec![1, 3, 2]);
    }

    #[test]
    fn sorted_buffer_rejects_duplicates() {
        let mut b = SortedBuffer::new(4);
        assert!(b.insert(n(1, 1.0)));
        assert!(!b.insert(n(1, 1.0)));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn sorted_buffer_expansion_order() {
        let mut b = SortedBuffer::new(4);
        b.insert(n(0, 4.0));
        b.insert(n(1, 1.0));
        b.insert(n(2, 2.0));
        assert_eq!(b.next_unexpanded().unwrap().id, 1);
        assert_eq!(b.next_unexpanded().unwrap().id, 2);
        // A closer candidate arriving later is expanded before farther ones.
        b.insert(n(3, 0.5));
        assert_eq!(b.next_unexpanded().unwrap().id, 3);
        assert_eq!(b.next_unexpanded().unwrap().id, 0);
        assert!(b.next_unexpanded().is_none());
    }

    #[test]
    fn sorted_buffer_bound_tracks_worst() {
        let mut b = SortedBuffer::new(2);
        assert_eq!(b.bound(), f32::INFINITY);
        b.insert(n(0, 3.0));
        assert_eq!(b.bound(), f32::INFINITY);
        b.insert(n(1, 1.0));
        assert_eq!(b.bound(), 3.0);
        b.insert(n(2, 2.0));
        assert_eq!(b.bound(), 2.0);
    }

    #[test]
    fn bounded_heap_keeps_k_smallest() {
        let mut h = BoundedMaxHeap::new(2);
        h.push(n(0, 5.0));
        h.push(n(1, 1.0));
        h.push(n(2, 3.0));
        h.push(n(3, 0.1));
        let sorted = h.into_sorted();
        assert_eq!(sorted.iter().map(|x| x.id).collect::<Vec<_>>(), vec![3, 1]);
    }

    #[test]
    fn heap_and_buffer_agree() {
        // Same stream of candidates -> same retained top-k set.
        let cands: Vec<Neighbor> = (0..50).map(|i| n(i, ((i * 37) % 50) as f32)).collect();
        let mut b = SortedBuffer::new(8);
        let mut h = BoundedMaxHeap::new(8);
        for &c in &cands {
            b.insert(c);
            h.push(c);
        }
        let mut from_b: Vec<u32> = b.top_k(8).iter().map(|x| x.id).collect();
        let mut from_h: Vec<u32> = h.into_sorted().iter().map(|x| x.id).collect();
        from_b.sort_unstable();
        from_h.sort_unstable();
        assert_eq!(from_b, from_h);
    }
}
