//! Table 1: pruning ratios of the ND methods on Deep and Sift.
//!
//! Paper numbers: RND 20%/25%, MOND 2%/4%, RRND 0.6%/0.7% (Deep/Sift).
//! Shape to reproduce: RND ≫ MOND ≫ RRND; absolute values depend on the
//! candidate-list construction, which we mirror (beam-search candidate
//! lists from graph construction).
//!
//! ```sh
//! cargo run --release -p gass-bench --bin table1_pruning
//! ```

use gass_bench::results_dir;
use gass_core::distance::{DistCounter, Space};
use gass_core::nd::NdStrategy;
use gass_core::neighbor::Neighbor;
use gass_data::DatasetKind;
use gass_eval::Table;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let n = 8_000 * gass_bench::scale();
    let list_len = 100;
    let probes = 60;
    println!(
        "Table 1: ND pruning ratios, {n} vectors, {probes} candidate lists of {list_len}\n"
    );

    let mut table = Table::new(vec!["dataset", "RND", "MOND", "RRND"]);
    for kind in [DatasetKind::Deep, DatasetKind::Sift] {
        let store = kind.generate_base(n, 7);
        // Candidate lists come from construction-style beam searches over
        // a real II graph (visited lists are diverse, unlike exact k-NN
        // lists), matching how the paper's diversification step sees
        // candidates.
        let graph = gass_graphs::IiGraph::build(
            store.clone(),
            gass_graphs::IiParams::small(gass_core::NdStrategy::Rnd),
        );
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut rng = SmallRng::seed_from_u64(13);
        let mut sums = [0.0f64; 3];
        for _ in 0..probes {
            let q = rng.random_range(0..n as u32);
            // The diversification step in real construction re-prunes a
            // node's *overflow list*: its already-diversified neighbors
            // plus the handful of new reverse-edge candidates — so the
            // measured ratios are small, as in the paper's Table 1.
            use gass_core::graph::GraphView;
            let mut cands: Vec<Neighbor> = graph
                .graph()
                .neighbors(q)
                .iter()
                .map(|&v| Neighbor::new(v, gass_core::l2_sq(store.get(q), store.get(v))))
                .collect();
            let res = graph.search_with(
                &gass_core::seed::RandomSeeds::new(n, 5),
                store.get(q),
                &gass_core::QueryParams::new(list_len, list_len).with_seed_count(8),
                &counter,
            );
            for c in res.neighbors {
                if c.id != q
                    && !cands.iter().any(|x| x.id == c.id)
                    && cands.len() < graph.graph().neighbors(q).len() + 8
                {
                    cands.push(c);
                }
            }
            sums[0] += NdStrategy::Rnd.pruning_ratio(space, q, &cands);
            sums[1] += NdStrategy::mond_default().pruning_ratio(space, q, &cands);
            sums[2] += NdStrategy::rrnd_default().pruning_ratio(space, q, &cands);
        }
        let pct = |x: f64| format!("{:.1}%", 100.0 * x / probes as f64);
        table.row(vec![kind.name(), pct(sums[0]), pct(sums[1]), pct(sums[2])]);
        println!(
            "shape check {} — RND > MOND > RRND: {}",
            kind.name(),
            sums[0] > sums[1] && sums[1] > sums[2]
        );
    }
    table.emit(&results_dir(), "table1_pruning").expect("write results");
}
