//! Offline stand-in for `serde`.
//!
//! The workspace serializes experiment records through its own JSON
//! serializer (`gass-eval::report::mini_json`), so what is needed here is
//! the serializer-generic *API shape*, not serde's full data model: the
//! [`Serialize`] trait, the [`ser`] module with [`ser::Serializer`] and the
//! seven compound-serializer traits, and impls of [`Serialize`] for the
//! primitive/std types the records contain. [`Deserialize`] is a marker —
//! the workspace derives it for forward compatibility but its binary
//! persistence goes through `gass-core::persist`, never through serde.

pub mod ser;

pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that could be deserialized. Never invoked in this
/// workspace; exists so `#[derive(Deserialize)]` has a trait to target.
pub trait Deserialize<'de>: Sized {}

/// Marker mirroring serde's owned-deserialization convenience bound.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
