//! EAPCA summarization and the Hercules tree — ELPIS's
//! divide-and-conquer substrate.
//!
//! **EAPCA** (Extended Adaptive Piecewise Constant Approximation) splits a
//! vector into segments and keeps each segment's *mean and standard
//! deviation*. For two vectors summarized over the same segmentation, the
//! squared Euclidean distance is lower-bounded by
//! `Σ_seg len·((Δmean)² + (Δstd)²)` — per segment, the mean term follows
//! from Cauchy–Schwarz and the std term from the reverse triangle
//! inequality on the centered residuals.
//!
//! The **Hercules tree** recursively splits the dataset on the EAPCA
//! feature (a segment's mean or std) with the widest spread, storing per
//! node the min/max envelope of every EAPCA feature. The envelope yields a
//! query-to-subtree lower bound: ELPIS uses the leaves as graph partitions
//! and the bounds to decide which leaf graphs a query must visit.
//!
//! We use equal-length segments (the adaptive segmentation of the original
//! Hercules index is an orthogonal refinement; equal segments preserve the
//! bound and the pruning behaviour — documented in DESIGN.md).

use gass_core::store::VectorStore;

/// Per-vector EAPCA summary: interleaved `(mean, std)` per segment.
#[derive(Clone, Debug, PartialEq)]
pub struct EapcaSummary {
    /// `2 * segments` floats: `[mean_0, std_0, mean_1, std_1, ...]`.
    pub features: Vec<f32>,
}

/// Computes the EAPCA summary of `v` over `segments` equal segments (the
/// last segment absorbs the remainder).
///
/// # Panics
/// Panics if `segments == 0` or `segments > v.len()`.
pub fn summarize(v: &[f32], segments: usize) -> EapcaSummary {
    assert!(segments > 0, "segment count must be positive");
    assert!(segments <= v.len(), "more segments than dimensions");
    let base = v.len() / segments;
    let mut features = Vec::with_capacity(2 * segments);
    for s in 0..segments {
        let start = s * base;
        let end = if s + 1 == segments { v.len() } else { start + base };
        let seg = &v[start..end];
        let mean = seg.iter().sum::<f32>() / seg.len() as f32;
        let var = seg.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / seg.len() as f32;
        features.push(mean);
        features.push(var.sqrt());
    }
    EapcaSummary { features }
}

/// Segment lengths for dimension `dim` split into `segments` parts.
fn segment_lengths(dim: usize, segments: usize) -> Vec<usize> {
    let base = dim / segments;
    let mut lens = vec![base; segments];
    *lens.last_mut().expect("segments > 0") += dim - base * segments;
    lens
}

/// Squared lower bound between two EAPCA summaries over the same
/// segmentation.
pub fn lower_bound_pair(a: &EapcaSummary, b: &EapcaSummary, seg_lens: &[usize]) -> f32 {
    debug_assert_eq!(a.features.len(), b.features.len());
    debug_assert_eq!(a.features.len(), 2 * seg_lens.len());
    let mut lb = 0.0f32;
    for (s, &len) in seg_lens.iter().enumerate() {
        let dm = a.features[2 * s] - b.features[2 * s];
        let ds = a.features[2 * s + 1] - b.features[2 * s + 1];
        lb += len as f32 * (dm * dm + ds * ds);
    }
    lb
}

/// One Hercules leaf: an id subset plus the min/max envelope of its EAPCA
/// features.
#[derive(Clone, Debug)]
pub struct HerculesLeaf {
    /// Dataset ids contained in this leaf.
    pub ids: Vec<u32>,
    min: Vec<f32>,
    max: Vec<f32>,
}

impl HerculesLeaf {
    /// Squared lower bound from a query summary to *any* vector whose
    /// summary lies inside this leaf's envelope.
    pub fn lower_bound(&self, query: &EapcaSummary, seg_lens: &[usize]) -> f32 {
        let mut lb = 0.0f32;
        for (s, &len) in seg_lens.iter().enumerate() {
            for off in 0..2 {
                let f = 2 * s + off;
                let q = query.features[f];
                let gap = if q < self.min[f] {
                    self.min[f] - q
                } else if q > self.max[f] {
                    q - self.max[f]
                } else {
                    0.0
                };
                lb += len as f32 * gap * gap;
            }
        }
        lb
    }
}

/// A flattened Hercules tree: the leaf partition plus everything needed
/// for query-time leaf pruning.
#[derive(Clone, Debug)]
pub struct HerculesTree {
    leaves: Vec<HerculesLeaf>,
    seg_lens: Vec<usize>,
    segments: usize,
    summary_bytes: usize,
}

impl HerculesTree {
    /// Builds the tree over all vectors of `store`, splitting on the widest
    /// EAPCA feature at the median until leaves hold at most `leaf_size`
    /// ids.
    ///
    /// # Panics
    /// Panics if the store is empty, `segments == 0`, `segments > dim`, or
    /// `leaf_size == 0`.
    pub fn build(store: &VectorStore, segments: usize, leaf_size: usize) -> Self {
        assert!(!store.is_empty(), "Hercules tree over empty store");
        assert!(leaf_size > 0, "leaf size must be positive");
        let seg_lens = segment_lengths(store.dim(), segments);
        let summaries: Vec<EapcaSummary> =
            store.iter().map(|(_, v)| summarize(v, segments)).collect();
        let summary_bytes = summaries.len() * 2 * segments * std::mem::size_of::<f32>();
        let ids: Vec<u32> = (0..store.len() as u32).collect();
        let mut leaves = Vec::new();
        split_rec(&summaries, ids, leaf_size, segments, &mut leaves);
        Self { leaves, seg_lens, segments, summary_bytes }
    }

    /// The leaf partition.
    pub fn leaves(&self) -> &[HerculesLeaf] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Segment count used by this tree.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Summarizes a query for use with [`Self::leaf_order`].
    pub fn summarize_query(&self, query: &[f32]) -> EapcaSummary {
        summarize(query, self.segments)
    }

    /// Leaf indices sorted by ascending lower bound to `query`, paired with
    /// the (squared) bounds. The first entry is ELPIS's "initial leaf".
    pub fn leaf_order(&self, query: &EapcaSummary) -> Vec<(usize, f32)> {
        let mut order: Vec<(usize, f32)> = self
            .leaves
            .iter()
            .enumerate()
            .map(|(i, l)| (i, l.lower_bound(query, &self.seg_lens)))
            .collect();
        order.sort_by(|a, b| a.1.total_cmp(&b.1));
        order
    }

    /// Approximate heap bytes (leaf envelopes + id lists + build-time
    /// summaries amortized out; we report the retained structures).
    pub fn heap_bytes(&self) -> usize {
        let per_leaf: usize = self
            .leaves
            .iter()
            .map(|l| {
                l.ids.capacity() * std::mem::size_of::<u32>()
                    + (l.min.capacity() + l.max.capacity()) * std::mem::size_of::<f32>()
            })
            .sum();
        per_leaf + self.summary_bytes
    }
}

fn envelope(summaries: &[EapcaSummary], ids: &[u32]) -> (Vec<f32>, Vec<f32>) {
    let f = summaries[ids[0] as usize].features.len();
    let mut min = vec![f32::INFINITY; f];
    let mut max = vec![f32::NEG_INFINITY; f];
    for &id in ids {
        for (i, &x) in summaries[id as usize].features.iter().enumerate() {
            min[i] = min[i].min(x);
            max[i] = max[i].max(x);
        }
    }
    (min, max)
}

fn split_rec(
    summaries: &[EapcaSummary],
    mut ids: Vec<u32>,
    leaf_size: usize,
    segments: usize,
    leaves: &mut Vec<HerculesLeaf>,
) {
    let (min, max) = envelope(summaries, &ids);
    if ids.len() <= leaf_size {
        leaves.push(HerculesLeaf { ids, min, max });
        return;
    }
    // Widest feature.
    let mut feat = 0usize;
    let mut spread = -1.0f32;
    for f in 0..2 * segments {
        let s = max[f] - min[f];
        if s > spread {
            spread = s;
            feat = f;
        }
    }
    if spread <= 0.0 {
        // All summaries identical: cannot split meaningfully.
        leaves.push(HerculesLeaf { ids, min, max });
        return;
    }
    let mid = ids.len() / 2;
    ids.select_nth_unstable_by(mid, |&a, &b| {
        summaries[a as usize].features[feat].total_cmp(&summaries[b as usize].features[feat])
    });
    let hi = ids.split_off(mid);
    split_rec(summaries, ids, leaf_size, segments, leaves);
    split_rec(summaries, hi, leaf_size, segments, leaves);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::distance::l2_sq;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn summary_of_constant_vector() {
        let s = summarize(&[2.0; 8], 4);
        assert_eq!(s.features.len(), 8);
        for seg in 0..4 {
            assert!((s.features[2 * seg] - 2.0).abs() < 1e-6);
            assert!(s.features[2 * seg + 1].abs() < 1e-6);
        }
    }

    #[test]
    fn summary_handles_remainder_segment() {
        let v: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let s = summarize(&v, 3); // segments of 3,3,4
        assert_eq!(s.features.len(), 6);
        assert!((s.features[0] - 1.0).abs() < 1e-6); // mean of 0,1,2
        assert!((s.features[4] - 7.5).abs() < 1e-6); // mean of 6,7,8,9
    }

    #[test]
    fn pairwise_lower_bound_is_valid() {
        let mut rng = SmallRng::seed_from_u64(1);
        let lens = segment_lengths(16, 4);
        for _ in 0..200 {
            let a: Vec<f32> = (0..16).map(|_| rng.random_range(-1.0..1.0f32)).collect();
            let b: Vec<f32> = (0..16).map(|_| rng.random_range(-1.0..1.0f32)).collect();
            let lb = lower_bound_pair(&summarize(&a, 4), &summarize(&b, 4), &lens);
            let exact = l2_sq(&a, &b);
            assert!(lb <= exact + 1e-3, "lower bound {lb} exceeds true distance {exact}");
        }
    }

    fn random_store(n: usize, dim: usize, seed: u64) -> VectorStore {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = VectorStore::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0..1.0f32)).collect();
            s.push(&v);
        }
        s
    }

    #[test]
    fn tree_partitions_dataset() {
        let store = random_store(300, 16, 2);
        let tree = HerculesTree::build(&store, 4, 32);
        let mut all: Vec<u32> =
            tree.leaves().iter().flat_map(|l| l.ids.iter().copied()).collect();
        all.sort_unstable();
        let expected: Vec<u32> = (0..300).collect();
        assert_eq!(all, expected);
        for leaf in tree.leaves() {
            assert!(leaf.ids.len() <= 32);
        }
    }

    #[test]
    fn leaf_lower_bound_is_valid_for_members() {
        let store = random_store(200, 16, 3);
        let tree = HerculesTree::build(&store, 4, 25);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..20 {
            let q: Vec<f32> = (0..16).map(|_| rng.random_range(-1.0..1.0f32)).collect();
            let qs = tree.summarize_query(&q);
            for leaf in tree.leaves() {
                let lb = leaf.lower_bound(&qs, &segment_lengths(16, 4));
                for &id in &leaf.ids {
                    let exact = l2_sq(&q, store.get(id));
                    assert!(
                        lb <= exact + 1e-3,
                        "leaf bound {lb} exceeds member distance {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn leaf_order_puts_home_leaf_first() {
        let store = random_store(400, 16, 4);
        let tree = HerculesTree::build(&store, 4, 50);
        // Query = an exact dataset vector: its own leaf must have bound 0
        // and rank first (ties allowed).
        let q = store.get(123).to_vec();
        let qs = tree.summarize_query(&q);
        let order = tree.leaf_order(&qs);
        assert_eq!(order.len(), tree.num_leaves());
        assert_eq!(order[0].1, 0.0);
        let home =
            tree.leaves().iter().position(|l| l.ids.contains(&123)).expect("member leaf");
        let home_bound = tree.leaves()[home].lower_bound(&qs, &segment_lengths(16, 4));
        assert_eq!(home_bound, 0.0);
    }

    #[test]
    fn identical_vectors_build_single_leafish_tree() {
        let mut s = VectorStore::new(8);
        for _ in 0..100 {
            s.push(&[3.0; 8]);
        }
        let tree = HerculesTree::build(&s, 2, 10);
        let total: usize = tree.leaves().iter().map(|l| l.ids.len()).sum();
        assert_eq!(total, 100);
    }
}
