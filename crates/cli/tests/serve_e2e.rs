//! End-to-end serve smoke test: spawn `gass serve` on an ephemeral port
//! through the real binary, issue queries over the real wire protocol —
//! single and concurrent (coalesced) — assert a recall floor against
//! exact ground truth, exercise the `overloaded` fast-reject path, and
//! verify a clean drain-and-exit shutdown.

use gass_core::persist;
use gass_serve::{Client, QueryRequest, Response, Status};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const K: usize = 5;

/// Recall-path query parameters: `(beam_width, rerank_factor)`. The CI
/// matrix reruns this test with GASS_QUANT set, and the server defers to
/// that override — the coarser the codec, the deeper the exact-rerank
/// pool needed to hold the recall floor (same operating points as the
/// quantized query ladder in `e2e.rs`).
fn recall_params() -> (usize, usize) {
    match std::env::var("GASS_QUANT").as_deref() {
        Ok("pq") => (96, 16),
        Ok("sq4") => (96, 8),
        _ => (64, 4),
    }
}

/// Kills the server on drop so a failing assertion can't leak a live
/// process (an orphaned server holds CI pipes open forever).
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn gass() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gass"))
}

fn run_ok(cmd: &mut Command) {
    let out = cmd.output().expect("spawn gass");
    assert!(
        out.status.success(),
        "command failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Generates a base store + graph once per test dir.
fn fixtures(dir: &Path) -> (PathBuf, PathBuf) {
    std::fs::create_dir_all(dir).unwrap();
    let store = dir.join("base.store.gass");
    let graph = dir.join("base.hnsw.gass");
    run_ok(gass().args([
        "generate",
        "--dataset",
        "deep",
        "--n",
        "800",
        "--seed",
        "5",
        "--out",
        store.to_str().unwrap(),
    ]));
    run_ok(gass().args([
        "build",
        "--method",
        "hnsw",
        "--store",
        store.to_str().unwrap(),
        "--out",
        graph.to_str().unwrap(),
    ]));
    (store, graph)
}

/// Spawns `gass serve`, waits for the readiness line, returns the
/// guarded child, its (still-open) stdout reader, and the bound address.
fn spawn_server(extra: &[&str]) -> (ChildGuard, BufReader<ChildStdout>, SocketAddr) {
    let mut cmd = gass();
    cmd.args(["serve", "--port", "0"]).args(extra).stdout(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn gass serve");
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read server stdout");
        assert!(n > 0, "server exited before becoming ready");
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.parse::<SocketAddr>().expect("parse bound address");
        }
    };
    (ChildGuard(child), reader, addr)
}

/// Waits for the child to exit cleanly and asserts the drain message.
fn assert_clean_exit(mut guard: ChildGuard, mut reader: BufReader<ChildStdout>) {
    let status = guard.0.wait().expect("wait for server");
    assert!(status.success(), "server exited with {status:?}");
    let mut rest = String::new();
    use std::io::Read as _;
    reader.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("server drained and exited"), "missing drain message: {rest}");
}

#[test]
fn serve_smoke_recall_batching_and_shutdown() {
    let dir = std::env::temp_dir().join("gass_cli_serve_e2e");
    let (store_path, graph_path) = fixtures(&dir);
    let (child, reader, addr) = spawn_server(&[
        "--store",
        store_path.to_str().unwrap(),
        "--graph",
        graph_path.to_str().unwrap(),
        "--workers",
        "2",
        "--max-batch",
        "8",
        "--max-wait-us",
        "5000",
    ]);

    // Ground truth from the very artifacts the server loaded.
    let base = persist::load_store(&store_path).unwrap();
    let queries = gass_data::DatasetKind::Deep.generate_base(40, 9);
    assert_eq!(queries.dim(), base.dim());
    let truth = gass_data::ground_truth(&base, &queries, K);

    let (beam, rerank) = recall_params();
    let req = move |q: &[f32]| QueryRequest {
        k: K,
        beam_width: beam,
        seed_count: 16,
        rerank_factor: rerank,
        deadline_us: 0,
        query: q.to_vec(),
    };

    // Phase 1: single sequential queries over one connection.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    let mut recall = 0.0;
    for (qi, row) in truth.iter().enumerate().take(10) {
        match client.query(req(queries.get(qi as u32))).unwrap() {
            Response::Neighbors(ns) => {
                let got: Vec<gass_core::Neighbor> =
                    ns.iter().map(|(id, d)| gass_core::Neighbor::new(*id, *d)).collect();
                recall += gass_eval::recall_at_k(row, &got, K);
            }
            other => panic!("expected neighbors, got {other:?}"),
        }
    }
    assert!(recall / 10.0 > 0.8, "served recall too low: {}", recall / 10.0);

    // Phase 2: concurrent clients; the 5ms batch window must coalesce at
    // least some of the 8 in-flight requests into shared batches.
    let queries = Arc::new(queries);
    let truth = Arc::new(truth);
    let mut joins = Vec::new();
    for t in 0..8usize {
        let queries = Arc::clone(&queries);
        let truth = Arc::clone(&truth);
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut recall = 0.0;
            let mut asked = 0;
            for round in 0..5 {
                let qi = ((t * 5 + round) % queries.len()) as u32;
                match client.query(req(queries.get(qi))).unwrap() {
                    Response::Neighbors(ns) => {
                        let got: Vec<gass_core::Neighbor> = ns
                            .iter()
                            .map(|(id, d)| gass_core::Neighbor::new(*id, *d))
                            .collect();
                        recall += gass_eval::recall_at_k(&truth[qi as usize], &got, K);
                        asked += 1;
                    }
                    other => panic!("expected neighbors, got {other:?}"),
                }
            }
            recall / asked as f64
        }));
    }
    for j in joins {
        assert!(j.join().unwrap() > 0.8, "concurrent-phase recall too low");
    }

    // The stats endpoint agrees: everything admitted completed, and the
    // concurrent phase produced at least one multi-request batch.
    let json = client.stats().unwrap();
    assert!(json.contains("\"completed\":50"), "stats: {json}");
    assert!(json.contains("\"overloaded\":0"), "stats: {json}");
    let batches: u64 = json
        .split("\"batches\":")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no batches field in {json}"));
    assert!(batches < 50, "no cross-request coalescing happened: {json}");
    // The per-query compute histogram saw every completed query and
    // records real work (its p50 is a positive distance-evaluation
    // count) — this is the live scoreboard for adaptive termination.
    let dist_hist = json
        .split("\"dists_per_query\":{")
        .nth(1)
        .and_then(|s| s.split('}').next())
        .unwrap_or_else(|| panic!("no dists_per_query histogram in {json}"));
    assert!(dist_hist.contains("\"count\":50"), "dists histogram incomplete: {json}");
    let dist_p50: u64 = dist_hist
        .split("\"p50\":")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no p50 in dists histogram: {json}"));
    assert!(dist_p50 > 0, "dists-per-query p50 is zero: {json}");

    // Phase 3: orderly shutdown over the wire.
    client.shutdown().unwrap();
    assert_clean_exit(child, reader);
}

#[test]
fn serve_sharded_smoke() {
    let dir = std::env::temp_dir().join("gass_cli_serve_e2e_sharded");
    std::fs::create_dir_all(&dir).unwrap();
    let store_path = dir.join("base.store.gass");
    let sharded = dir.join("sharded_idx");
    run_ok(gass().args([
        "generate",
        "--dataset",
        "deep",
        "--n",
        "800",
        "--seed",
        "5",
        "--out",
        store_path.to_str().unwrap(),
    ]));
    run_ok(gass().args([
        "build",
        "--method",
        "hnsw",
        "--store",
        store_path.to_str().unwrap(),
        "--out",
        sharded.to_str().unwrap(),
        "--shards",
        "4",
        "--nprobe",
        "2",
    ]));

    // Serve the sharded directory at full probe so the recall floor is
    // about the serving path, not the routing operating point.
    let (child, reader, addr) = spawn_server(&[
        "--sharded",
        sharded.to_str().unwrap(),
        "--nprobe",
        "4",
        "--workers",
        "2",
    ]);

    let base = persist::load_store(&store_path).unwrap();
    let queries = gass_data::DatasetKind::Deep.generate_base(20, 9);
    let truth = gass_data::ground_truth(&base, &queries, K);
    let (beam, rerank) = recall_params();

    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    let mut recall = 0.0;
    for (qi, row) in truth.iter().enumerate() {
        match client
            .query(QueryRequest {
                k: K,
                beam_width: beam,
                seed_count: 16,
                rerank_factor: rerank,
                deadline_us: 0,
                query: queries.get(qi as u32).to_vec(),
            })
            .unwrap()
        {
            Response::Neighbors(ns) => {
                let got: Vec<gass_core::Neighbor> =
                    ns.iter().map(|(id, d)| gass_core::Neighbor::new(*id, *d)).collect();
                recall += gass_eval::recall_at_k(row, &got, K);
            }
            other => panic!("expected neighbors, got {other:?}"),
        }
    }
    let recall = recall / truth.len() as f64;
    assert!(recall > 0.8, "sharded served recall too low: {recall}");

    client.shutdown().unwrap();
    assert_clean_exit(child, reader);
}

/// The intra-query fan-out leg: the same sharded directory served twice —
/// once with the sequential probe loop, once with `--fanout-workers 2` —
/// must produce byte-identical answers (ids and f32 distance bits) for
/// every query. Exercises the fan-out pool end to end through the wire
/// protocol, micro-batching, and the coalesced engine.
#[test]
fn serve_sharded_fanout_answers_identically() {
    let dir = std::env::temp_dir().join("gass_cli_serve_e2e_fanout");
    std::fs::create_dir_all(&dir).unwrap();
    let store_path = dir.join("base.store.gass");
    let sharded = dir.join("sharded_idx");
    run_ok(gass().args([
        "generate",
        "--dataset",
        "deep",
        "--n",
        "700",
        "--seed",
        "11",
        "--out",
        store_path.to_str().unwrap(),
    ]));
    run_ok(gass().args([
        "build",
        "--method",
        "hnsw",
        "--store",
        store_path.to_str().unwrap(),
        "--out",
        sharded.to_str().unwrap(),
        "--shards",
        "4",
        "--nprobe",
        "3",
    ]));

    let queries = gass_data::DatasetKind::Deep.generate_base(16, 13);
    let (beam, rerank) = recall_params();
    let mut answers: Vec<Vec<Vec<(u32, u32)>>> = Vec::new();
    for fanout in ["1", "2"] {
        let (child, reader, addr) = spawn_server(&[
            "--sharded",
            sharded.to_str().unwrap(),
            "--fanout-workers",
            fanout,
            "--workers",
            "2",
        ]);
        let mut client = Client::connect(addr).unwrap();
        let mut per_query = Vec::new();
        for qi in 0..queries.len() as u32 {
            match client
                .query(QueryRequest {
                    k: K,
                    beam_width: beam,
                    seed_count: 16,
                    rerank_factor: rerank,
                    deadline_us: 0,
                    query: queries.get(qi).to_vec(),
                })
                .unwrap()
            {
                Response::Neighbors(ns) => per_query
                    .push(ns.iter().map(|(id, d)| (*id, d.to_bits())).collect::<Vec<_>>()),
                other => panic!("expected neighbors, got {other:?}"),
            }
        }
        answers.push(per_query);
        client.shutdown().unwrap();
        assert_clean_exit(child, reader);
    }
    assert_eq!(answers[0], answers[1], "fan-out changed served answers");
}

#[test]
fn serve_overload_fast_rejects_instead_of_queueing() {
    let dir = std::env::temp_dir().join("gass_cli_serve_e2e_overload");
    let (store_path, graph_path) = fixtures(&dir);
    // A server with almost no room: one worker, per-request batches, a
    // queue of depth 1, and expensive queries.
    let (child, reader, addr) = spawn_server(&[
        "--store",
        store_path.to_str().unwrap(),
        "--graph",
        graph_path.to_str().unwrap(),
        "--workers",
        "1",
        "--max-batch",
        "1",
        "--max-wait-us",
        "0",
        "--queue-depth",
        "1",
    ]);

    let shed = Arc::new(AtomicUsize::new(0));
    let served = Arc::new(AtomicUsize::new(0));
    let mut joins = Vec::new();
    for t in 0..16u64 {
        let shed = Arc::clone(&shed);
        let served = Arc::clone(&served);
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            for round in 0..10 {
                // Stop hammering once the shed path is proven.
                if round > 0 && shed.load(Ordering::Relaxed) > 0 {
                    break;
                }
                let q = vec![0.01 * (t + round) as f32; 96];
                match client
                    .query(QueryRequest {
                        k: K,
                        beam_width: 256,
                        seed_count: 48,
                        rerank_factor: 4,
                        deadline_us: 0,
                        query: q,
                    })
                    .unwrap()
                {
                    Response::Neighbors(_) => {
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                    Response::Rejected { status: Status::Overloaded, detail } => {
                        assert!(detail.contains("queue full"), "detail: {detail}");
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("unexpected response {other:?}"),
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let (shed, served) = (shed.load(Ordering::Relaxed), served.load(Ordering::Relaxed));
    assert!(shed > 0, "16 concurrent clients against queue depth 1 never got shed");
    assert!(served > 0, "admission control must still admit work");

    // The overloaded server still answers control traffic and sheds are
    // accounted; then it shuts down cleanly.
    let mut client = Client::connect(addr).unwrap();
    let json = client.stats().unwrap();
    assert!(
        json.contains(&format!("\"overloaded\":{shed}")),
        "stats disagree with observed sheds ({shed}): {json}"
    );
    client.shutdown().unwrap();
    assert_clean_exit(child, reader);
}
