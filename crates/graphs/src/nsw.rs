//! **NSW** — Navigable Small World graphs (Malkov et al. 2014), the first
//! Incremental-Insertion method: each new vertex is connected
//! bi-directionally to its `M` (beam-search-approximate) nearest
//! neighbors among the already-inserted vertices; no diversification.
//! Edges created early act as long-range links, giving the small-world
//! navigation property.

use crate::common::BuildReport;
use gass_core::distance::{DistCounter, Space};
use gass_core::graph::{AdjacencyGraph, GraphView};
use gass_core::index::{AnnIndex, IndexStats, QueryParams, ScratchPool};
use gass_core::reorder::{ReorderStrategy, ServingState};
use gass_core::search::{beam_search, beam_search_frozen, SearchResult, SearchScratch};
use gass_core::seed::{RandomSeeds, SeedProvider};
use gass_core::store::VectorStore;

/// NSW construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct NswParams {
    /// Connections added per inserted vertex (VoroNet's `2d+1` heuristic
    /// is superseded by a tunable `M` in practice).
    pub m: usize,
    /// Construction beam width.
    pub ef_construction: usize,
    /// RNG seed.
    pub seed: u64,
}

impl NswParams {
    /// Small-scale defaults: `M=12`, `ef=64`.
    pub fn small() -> Self {
        Self { m: 12, ef_construction: 64, seed: 42 }
    }
}

/// A built NSW index. NSW keeps adjacency lists (degrees are unbounded —
/// reverse edges accumulate on hub nodes, which is part of why HNSW later
/// added pruning).
pub struct NswIndex {
    store: VectorStore,
    graph: AdjacencyGraph,
    serving: ServingState,
    seeds: RandomSeeds,
    scratch: ScratchPool,
    build: BuildReport,
}

impl NswIndex {
    /// Builds the index by incremental insertion.
    pub fn build(store: VectorStore, params: NswParams) -> Self {
        assert!(store.len() >= 2, "need at least two vectors");
        let counter = DistCounter::new();
        let start = std::time::Instant::now();
        let n = store.len();
        let mut graph = AdjacencyGraph::with_degree_hint(n, params.m * 2);
        {
            let space = Space::new(&store, &counter);
            let build_seeder = RandomSeeds::new(n, params.seed ^ 0x5eed);
            let mut scratch = SearchScratch::new(n, params.ef_construction);
            let mut seed_buf = Vec::new();
            for id in 1..n as u32 {
                seed_buf.clear();
                seed_buf.push(0);
                let mut raw = Vec::new();
                build_seeder.seeds(space, store.get(id), 4, &mut raw);
                seed_buf.extend(raw.into_iter().map(|s| s % id));
                seed_buf.dedup();
                let res = beam_search(
                    &graph,
                    space,
                    store.get(id),
                    &seed_buf,
                    params.m,
                    params.ef_construction,
                    &mut scratch,
                );
                for nb in res.neighbors.iter().take(params.m) {
                    graph.add_undirected(id, nb.id);
                }
            }
        }
        let build =
            BuildReport { seconds: start.elapsed().as_secs_f64(), dist_calcs: counter.get() };
        let seeds = RandomSeeds::new(n, params.seed ^ 0xbeef);
        Self {
            store,
            graph,
            seeds,
            serving: ServingState::new(),
            scratch: ScratchPool::new(),
            build,
        }
    }

    /// Construction cost report.
    pub fn build_report(&self) -> BuildReport {
        self.build
    }

    /// The underlying graph.
    pub fn graph(&self) -> &AdjacencyGraph {
        &self.graph
    }
}

impl AnnIndex for NswIndex {
    fn name(&self) -> String {
        "NSW".to_string()
    }

    fn num_vectors(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        let space =
            Space::new(&self.store, counter).with_quant(self.serving.quant_view(params));
        let mut seeds = Vec::new();
        self.seeds.seeds(space, query, params.seed_count, &mut seeds);
        let res = self.scratch.with(self.store.len(), params.beam_width, |scratch| {
            beam_search_frozen(
                &self.graph,
                self.serving.csr(),
                space,
                query,
                &seeds,
                params.k,
                params.beam_width,
                scratch,
                params.termination(),
            )
        });
        self.serving.finish(res)
    }

    fn freeze(&mut self) {
        self.serving.freeze(&self.graph);
    }

    fn is_frozen(&self) -> bool {
        self.serving.is_frozen()
    }

    fn quantize(&mut self, spec: gass_core::CodecSpec) {
        self.serving.quantize(&self.store, spec);
    }

    fn is_quantized(&self) -> bool {
        self.serving.is_quantized()
    }

    fn reorder(&mut self, strategy: ReorderStrategy) {
        if let Some(map) = self.serving.reorder(&self.graph, &mut self.store, strategy, &[]) {
            self.seeds.reorder(&map);
        }
    }

    fn is_reordered(&self) -> bool {
        self.serving.is_reordered()
    }

    fn reorder_strategy(&self) -> ReorderStrategy {
        self.serving.strategy()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            nodes: self.graph.num_nodes(),
            edges: self.graph.num_edges(),
            avg_degree: self.graph.avg_degree(),
            max_degree: self.graph.max_degree(),
            graph_bytes: self.graph.heap_bytes() + self.serving.graph_bytes(),
            aux_bytes: self.serving.aux_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_data::ground_truth::ground_truth;
    use gass_data::synth::deep_like;

    #[test]
    fn nsw_graph_is_navigable() {
        let base = deep_like(400, 1);
        let queries = deep_like(12, 2);
        let idx = NswIndex::build(base.clone(), NswParams::small());
        let gt = ground_truth(&base, &queries, 10);
        let counter = DistCounter::new();
        let params = QueryParams::new(10, 64).with_seed_count(8);
        let mut hit = 0;
        for (qi, row) in gt.iter().enumerate() {
            let res = idx.search(queries.get(qi as u32), &params, &counter);
            hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
        }
        let recall = hit as f64 / 120.0;
        assert!(recall > 0.85, "NSW recall too low: {recall}");
    }

    #[test]
    fn early_nodes_accumulate_degree() {
        // Without pruning, early-inserted vertices become hubs: their
        // degree exceeds M (the long-range link phenomenon).
        let base = deep_like(500, 3);
        let idx = NswIndex::build(base, NswParams::small());
        let early_deg = idx.graph().neighbors(0).len();
        assert!(early_deg > 12, "node 0 degree {early_deg} should exceed M");
        assert_eq!(idx.name(), "NSW");
    }

    #[test]
    fn graph_is_connected_from_first_node() {
        let base = deep_like(200, 5);
        let idx = NswIndex::build(base, NswParams::small());
        assert!(idx.graph().is_connected_from(0));
    }
}
