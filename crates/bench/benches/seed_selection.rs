//! Seed-selection micro-benchmarks: per-query overhead of each strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gass_core::distance::{DistCounter, Space};
use gass_core::seed::{FixedSeed, MedoidSeed, RandomSeeds, SeedProvider};
use gass_data::synth::deep_like;
use gass_graphs::SnSeeds;
use gass_trees::kdtree::KdForest;
use std::hint::black_box;

fn bench_seeds(c: &mut Criterion) {
    let n = 5_000;
    let base = deep_like(n, 1);
    let queries = deep_like(16, 2);
    let counter = DistCounter::new();
    let space = Space::new(&base, &counter);

    let sn = SnSeeds::build(space, 8, 32, 1);
    let kd = KdForest::build(&base, 4, 16, 2);
    let md = MedoidSeed::compute(space);
    let sf = FixedSeed::random(n, 3);
    let ks = RandomSeeds::new(n, 4);
    let providers: Vec<(&str, &dyn SeedProvider)> =
        vec![("SN", &sn), ("KD", &kd), ("MD", &md), ("SF", &sf), ("KS", &ks)];

    let mut group = c.benchmark_group("seed_selection");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for (label, provider) in providers {
        group.bench_with_input(BenchmarkId::new("seeds", label), &label, |b, _| {
            let mut out = Vec::new();
            b.iter(|| {
                for (_, q) in queries.iter() {
                    out.clear();
                    provider.seeds(space, q, 16, &mut out);
                    black_box(&out);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_seeds);
criterion_main!(benches);
