//! Memory-mapped, chunk-faulted file backing for read-only serving state.
//!
//! [`MmapBuf`] maps a whole file read-only via the platform `mmap` (raw
//! FFI through the `libc` shim — `std` already links the C library, so
//! zero dependencies are vendored). Pages fault in lazily on first touch,
//! so a store whose rows live in an [`MmapBuf`] can exceed physical RAM:
//! the kernel keeps the hot working set resident and evicts cold chunks
//! under pressure, which is exactly the access economics IVF-style
//! sharded serving wants (only the probed shards' rows ever fault in).
//!
//! Every consumer must also work where mapping is impossible, so the
//! module carries a **file-backed fallback reader**: [`MmapBuf::open`]
//! falls back to reading the file into an anonymous heap buffer when
//! `mmap` is unavailable (non-Unix), fails, or is disabled via
//! `GASS_NO_MMAP=1` / [`set_mmap_enabled`] — observationally identical,
//! just without the beyond-RAM economics. [`MmapRegion`] is a cheap
//! ref-counted byte window into a buffer, the unit the store and codec
//! layers hold per section.

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

const MMAP_UNINIT: u8 = 0;
const MMAP_ON: u8 = 1;
const MMAP_OFF: u8 = 2;

static MMAP_MODE: AtomicU8 = AtomicU8::new(MMAP_UNINIT);

#[cold]
fn init_mmap_mode() -> u8 {
    let off =
        !cfg!(unix) || std::env::var("GASS_NO_MMAP").is_ok_and(|v| !v.is_empty() && v != "0");
    let m = if off { MMAP_OFF } else { MMAP_ON };
    MMAP_MODE.store(m, Ordering::Relaxed);
    m
}

/// Whether [`MmapBuf::open`] will try to map (Unix, not disabled via
/// `GASS_NO_MMAP=1` or [`set_mmap_enabled`]). Read once from the
/// environment, like the SIMD/prefetch toggles.
#[inline]
pub fn mmap_enabled() -> bool {
    let m = MMAP_MODE.load(Ordering::Relaxed);
    let m = if m == MMAP_UNINIT { init_mmap_mode() } else { m };
    m == MMAP_ON
}

/// In-process override for A/B runs and fallback tests. `true` re-enables
/// mapping only where the platform supports it.
pub fn set_mmap_enabled(on: bool) {
    let m = if on && cfg!(unix) { MMAP_ON } else { MMAP_OFF };
    MMAP_MODE.store(m, Ordering::Relaxed);
}

/// Expected access pattern for [`MmapBuf::advise`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Advice {
    /// Random point lookups (curb readahead) — serving traversals.
    Random,
    /// Sequential scan (aggressive readahead) — ground-truth sweeps.
    Sequential,
    /// Fault the region in ahead of use.
    WillNeed,
}

enum Backing {
    /// Pages owned by the kernel; unmapped on drop.
    #[cfg(unix)]
    Mapped { ptr: *mut u8, len: usize },
    /// The fallback reader's anonymous heap copy.
    Heap(Vec<u8>),
}

/// A read-only byte buffer backed by a memory-mapped file, or by a heap
/// copy when mapping is unavailable (see module docs).
pub struct MmapBuf {
    backing: Backing,
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE and never mutated after
// construction; shared references to immutable bytes are Send + Sync.
unsafe impl Send for MmapBuf {}
unsafe impl Sync for MmapBuf {}

impl MmapBuf {
    /// Opens `path`, mapping it when [`mmap_enabled`] and falling back to
    /// the heap reader otherwise (or if the mapping attempt fails).
    pub fn open(path: &Path) -> io::Result<Arc<Self>> {
        if mmap_enabled() {
            if let Ok(buf) = Self::open_mapped(path) {
                return Ok(buf);
            }
        }
        Self::open_heap(path)
    }

    /// Maps `path` read-only; errors if the platform cannot map it.
    #[cfg(unix)]
    pub fn open_mapped(path: &Path) -> io::Result<Arc<Self>> {
        use std::os::unix::io::AsRawFd;
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file exceeds usize"))?;
        if len == 0 {
            // Zero-length mappings are an error to mmap; an empty heap
            // buffer is observationally the same.
            return Ok(Arc::new(Self { backing: Backing::Heap(Vec::new()) }));
        }
        // SAFETY: fd is a freshly opened readable file, len is its exact
        // size, and the mapping is private read-only. The fd may be closed
        // right after — the mapping keeps the file referenced.
        let ptr = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ,
                libc::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == libc::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Arc::new(Self { backing: Backing::Mapped { ptr: ptr.cast(), len } }))
    }

    /// Mapping is unsupported off-Unix; callers land in the fallback.
    #[cfg(not(unix))]
    pub fn open_mapped(_path: &Path) -> io::Result<Arc<Self>> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "mmap requires a Unix target"))
    }

    /// The file-backed fallback reader: loads the whole file into an
    /// anonymous heap buffer.
    pub fn open_heap(path: &Path) -> io::Result<Arc<Self>> {
        let mut file = File::open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        Ok(Arc::new(Self { backing: Backing::Heap(data) }))
    }

    /// Whether the bytes come from a live kernel mapping (false: heap
    /// fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Heap(_) => false,
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { len, .. } => *len,
            Backing::Heap(v) => v.len(),
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole buffer.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; the borrow cannot outlive the mapping.
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Heap(v) => v,
        }
    }

    /// Hints the kernel about the expected access pattern over
    /// `[offset, offset + len)`. Best-effort: a no-op on the heap
    /// fallback or if the kernel declines.
    pub fn advise(&self, offset: usize, len: usize, advice: Advice) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len: total } = &self.backing {
            if offset >= *total || len == 0 {
                return;
            }
            let len = len.min(*total - offset);
            // madvise wants page-aligned starts; round down and extend.
            let page = 4096usize;
            let lead = offset % page;
            let (offset, len) = (offset - lead, len + lead);
            let flag = match advice {
                Advice::Random => libc::MADV_RANDOM,
                Advice::Sequential => libc::MADV_SEQUENTIAL,
                Advice::WillNeed => libc::MADV_WILLNEED,
            };
            // SAFETY: the range is within the live mapping.
            unsafe {
                libc::madvise(ptr.add(offset).cast(), len, flag);
            }
        }
        #[cfg(not(unix))]
        let _ = (offset, len, advice);
    }
}

impl Drop for MmapBuf {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = &self.backing {
            // SAFETY: ptr/len came from a successful mmap and are dropped
            // exactly once.
            unsafe {
                libc::munmap((*ptr).cast(), *len);
            }
        }
    }
}

impl std::fmt::Debug for MmapBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapBuf")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// A cheap ref-counted window into an [`MmapBuf`] — the per-section unit
/// the store and codec layers hold (e.g. the vector rows of one persisted
/// shard). Clones share the underlying mapping.
#[derive(Clone, Debug)]
pub struct MmapRegion {
    buf: Arc<MmapBuf>,
    offset: usize,
    len: usize,
}

impl MmapRegion {
    /// A window over `[offset, offset + len)` of `buf`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn new(buf: Arc<MmapBuf>, offset: usize, len: usize) -> Self {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= buf.len()),
            "region [{offset}, {offset}+{len}) out of bounds for {} mapped bytes",
            buf.len()
        );
        Self { buf, offset, len }
    }

    /// Whether the backing buffer is a live kernel mapping.
    pub fn is_mapped(&self) -> bool {
        self.buf.is_mapped()
    }

    /// The region's bytes, 4-byte aligned reinterpreted as `f32`s.
    ///
    /// # Panics
    /// Panics if the region start is not 4-byte aligned or the length is
    /// not a multiple of 4 (persisted sections align data areas to 64).
    pub fn as_f32s(&self) -> &[f32] {
        let bytes = self.deref();
        assert!(
            (bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<f32>()),
            "unaligned region"
        );
        assert!(bytes.len().is_multiple_of(4), "region is not whole f32s");
        // SAFETY: alignment and length checked; any bit pattern is a
        // valid f32; the mapping is immutable and outlives the borrow.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast(), bytes.len() / 4) }
    }

    /// Kernel access-pattern hint for this region (no-op on fallback).
    pub fn advise(&self, advice: Advice) {
        self.buf.advise(self.offset, self.len, advice);
    }
}

impl Deref for MmapRegion {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf.as_bytes()[self.offset..self.offset + self.len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, data: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("gass_mmap_{}_{name}", std::process::id()));
        std::fs::write(&p, data).unwrap();
        p
    }

    #[test]
    fn mapped_and_heap_agree() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let p = tmp("agree", &data);
        let heap = MmapBuf::open_heap(&p).unwrap();
        assert!(!heap.is_mapped());
        assert_eq!(heap.as_bytes(), &data[..]);
        if cfg!(unix) {
            let mapped = MmapBuf::open_mapped(&p).unwrap();
            assert!(mapped.is_mapped());
            assert_eq!(mapped.as_bytes(), heap.as_bytes());
            mapped.advise(0, mapped.len(), Advice::Random);
            mapped.advise(64, 4096, Advice::WillNeed);
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn region_windows_and_f32_view() {
        let floats: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();
        let mut bytes = vec![0u8; 64]; // 64-byte aligned data area, like persist
        for f in &floats {
            bytes.extend_from_slice(&f.to_le_bytes());
        }
        let p = tmp("region", &bytes);
        let buf = MmapBuf::open(&p).unwrap();
        let region = MmapRegion::new(buf, 64, floats.len() * 4);
        assert_eq!(region.as_f32s(), &floats[..]);
        region.advise(Advice::Sequential);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_buffer() {
        let p = tmp("empty", &[]);
        let buf = MmapBuf::open(&p).unwrap();
        assert!(buf.is_empty());
        std::fs::remove_file(&p).ok();
    }
}
