//! Offline stand-in for the `bytes` crate.
//!
//! Backed by a plain `Vec<u8>` plus a cursor instead of refcounted shared
//! buffers — the persistence layer only encodes into a `BytesMut`, freezes,
//! and decodes front-to-back, so zero-copy sharing buys nothing here.

use std::ops::{Bound, Deref, RangeBounds};

/// Read-side cursor over an immutable byte buffer (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes and returns one byte.
    fn get_u8(&mut self) -> u8;

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Consumes a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;

    /// Consumes `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);
}

/// Write-side growable buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable byte buffer with an internal read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `src` into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self { data: src.to_vec(), pos: 0 }
    }

    /// Wraps a static slice (copied; this shim has no zero-copy path).
    pub fn from_static(src: &'static [u8]) -> Self {
        Self::copy_from_slice(src)
    }

    /// Unconsumed length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.remaining()
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Copy of the unconsumed bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Sub-buffer of the unconsumed bytes.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let rest = self.as_slice();
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => rest.len(),
        };
        Self::copy_from_slice(&rest[start..end])
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.remaining() >= n, "buffer underflow: need {n}, have {}", self.remaining());
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        out
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let n = dst.len();
        dst.copy_from_slice(self.take(n));
    }

    fn advance(&mut self, cnt: usize) {
        self.take(cnt);
    }
}

/// Growable write buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { data: Vec::with_capacity(capacity) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u32_le(0xdead_beef);
        w.put_u64_le(0x0123_4567_89ab_cdef);
        w.put_f32_le(2.5);
        w.put_slice(b"tail");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 4 + 4);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_f32_le(), 2.5);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_and_len_track_cursor() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        b.advance(2);
        assert_eq!(b.len(), 3);
        assert_eq!(b.slice(0..2).to_vec(), vec![3, 4]);
        assert_eq!(b.slice(1..).to_vec(), vec![4, 5]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(b"ab");
        b.get_u32_le();
    }
}
