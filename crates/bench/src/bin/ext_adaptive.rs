//! Extension experiment: adaptive early termination and per-query
//! compute budgeting on a mixed easy/hard workload.
//!
//! A fixed beam width `L` is sized for the hardest queries, so the easy
//! majority keeps expanding long after its top-k converged (the paper's
//! Figure 11 beam sweep shows the needed `L` varies by an order of
//! magnitude across queries). This harness quantifies what the
//! [`gass_core::TerminationPolicy`] knobs buy on a workload built to
//! have that spread: three quarters of the queries are barely-perturbed
//! base points (1% noise — easy, the in-distribution majority of a
//! production workload), one quarter carries 50% Gaussian noise (far
//! past the Figure 15 hardness sweep's worst level, so the hard tail
//! genuinely forces the fixed beam wide).
//!
//! The comparison is equal-recall: the fixed-beam baseline picks the
//! smallest `L` clearing the recall floor, then every (policy, knob)
//! cell of the adaptive grid — run at the baseline's beam, which now
//! acts as a cap — that holds recall@10 within half a point of the
//! baseline competes on single-thread QPS.
//!
//! Acceptance shape: the best adaptive cell reaches >= 1.3x the
//! fixed-beam single-thread QPS at equal recall@10 (within 0.5pt), with
//! `Fixed` re-verified bit-identical to the never-triggering adaptive
//! configurations on the same index. A second section routes the same
//! workload through a `ShardedIndex`, where adaptive probing turns
//! `nprobe` into a cap: it must spend *fewer mean probes* than the fixed
//! plan at unchanged recall.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin ext_adaptive
//! ```
//!
//! `GASS_SCALE` scales the dataset, `GASS_QUERIES` the per-difficulty
//! query count. Output: `results/ext_adaptive.json`. The committed
//! results were produced with `GASS_SCALE=5` (500K vectors): the
//! reclaimable waste grows with the depth of the fixed search — at
//! 100K the 0.99 floor only needs `L = 48` and the equal-recall win
//! shrinks to ~1.1-1.2x, at 500K the floor forces `L = 128` and the
//! best adaptive cell clears 1.7x.

use gass_bench::{num_queries, results_dir, scale};
use gass_core::distance::DistCounter;
use gass_core::index::{AnnIndex, PrebuiltIndex, QueryParams};
use gass_core::seed::RandomSeeds;
use gass_core::{
    Neighbor, SeedProvider, ShardedIndex, ShardedParams, TerminationPolicy, VectorStore,
};
use gass_eval::{measure_throughput, recall_at_k, write_json, Table};
use gass_graphs::{HnswIndex, HnswParams};
use serde::Serialize;

const K: usize = 10;
const ROUNDS: usize = 15;
/// Throughput repetitions per operating point; the best run is the
/// measurement.
const REPS: usize = 5;
/// Headline requirement: best equal-recall adaptive QPS over fixed-beam.
const SPEEDUP_TARGET: f64 = 1.3;
/// Recall@10 floor for the fixed-beam operating point. High on purpose:
/// adaptive termination pays off where the hard tail forces the fixed
/// beam wide and the easy majority overpays — at low floors a fixed
/// beam can simply shrink and there is little waste to reclaim.
const RECALL_FLOOR: f64 = 0.99;
/// Equal-recall tolerance: adaptive cells must stay within half a point.
const RECALL_SLACK: f64 = 0.005;
/// A patience/eps that can never fire at these sizes — the
/// never-triggering configurations `Fixed` must match bit-for-bit.
const NEVER: usize = usize::MAX >> 1;

#[derive(Serialize)]
struct BaselineRecord {
    beam_width: usize,
    recall_at_10: f64,
    recall_easy: f64,
    recall_hard: f64,
    dists_per_query: u64,
    qps_1t: f64,
    p50_us_1t: f64,
    p99_us_1t: f64,
}

#[derive(Serialize)]
struct AdaptivePoint {
    term: String,
    beam_width: usize,
    recall_at_10: f64,
    recall_easy: f64,
    recall_hard: f64,
    dists_per_query: u64,
    qps_1t: f64,
    p50_us_1t: f64,
    p99_us_1t: f64,
    speedup_vs_fixed: f64,
    /// Within `RECALL_SLACK` of the fixed-beam operating recall.
    at_parity: bool,
}

#[derive(Serialize)]
struct ShardedPoint {
    term: String,
    nprobe_cap: usize,
    mean_probes: f64,
    recall_at_10: f64,
    dists_per_query: u64,
}

#[derive(Serialize)]
struct Headline {
    term: String,
    beam_width: usize,
    recall_at_10: f64,
    qps_1t: f64,
    speedup_vs_fixed: f64,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    dataset: &'static str,
    n: usize,
    dim: usize,
    num_queries: usize,
    easy_queries: usize,
    hard_queries: usize,
    k: usize,
    rounds: usize,
    host_cores: usize,
    simd_backend: &'static str,
    /// `Fixed` answered bit-identically (ids, distance bits, counter
    /// totals) to never-triggering saturation/distratio/budget configs.
    fixed_bit_identical: bool,
    baseline: BaselineRecord,
    adaptive: Vec<AdaptivePoint>,
    speedup_target: f64,
    meets_target: bool,
    headline: Headline,
    sharded_shards: usize,
    sharded: Vec<ShardedPoint>,
    /// Best adaptive sharded point spends fewer mean probes than the
    /// fixed plan at unchanged recall.
    sharded_fewer_probes_at_parity: bool,
    notes: String,
}

/// One deterministic, single-threaded pass: overall recall, the
/// easy/hard split recalls, total distance evaluations, and the
/// bit-exact per-query answer keys.
#[allow(clippy::type_complexity)]
fn deterministic_pass(
    index: &dyn AnnIndex,
    queries: &VectorStore,
    truth: &[Vec<Neighbor>],
    easy: usize,
    params: &QueryParams,
) -> (f64, f64, f64, u64, Vec<Vec<(u32, u32)>>) {
    let counter = DistCounter::new();
    let mut keys = Vec::with_capacity(truth.len());
    let (mut r_easy, mut r_hard) = (0.0, 0.0);
    for (qi, row) in truth.iter().enumerate() {
        let res = index.search(queries.get(qi as u32), params, &counter);
        let r = recall_at_k(row, &res.neighbors, K);
        if qi < easy {
            r_easy += r;
        } else {
            r_hard += r;
        }
        keys.push(res.neighbors.iter().map(|n| (n.id, n.dist.to_bits())).collect());
    }
    let hard = truth.len() - easy;
    (
        (r_easy + r_hard) / truth.len() as f64,
        r_easy / easy.max(1) as f64,
        r_hard / hard.max(1) as f64,
        counter.get(),
        keys,
    )
}

fn best_throughput(
    index: &dyn AnnIndex,
    queries: &VectorStore,
    params: &QueryParams,
) -> gass_eval::ThroughputReport {
    (0..REPS)
        .map(|_| measure_throughput(index, queries, params, 1, ROUNDS))
        .max_by(|a, b| a.qps.total_cmp(&b.qps))
        .expect("REPS > 0")
}

fn main() {
    let n = 100_000 * scale();
    let host_cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    gass_core::set_simd_enabled(true);
    gass_core::set_prefetch_enabled(true);
    println!("Extension: adaptive early termination, n={n}, k={K}\n");

    let base = gass_data::synth::deep_like(n, 404);
    let dim = base.dim();
    // Mixed workload: the easy majority sits 1% noise off a base point
    // (its top-k is found within a few hops), the hard quarter carries
    // noise far past the Figure 15 sweep's worst level — queries whose
    // top-k needs a beam several times wider.
    let easy_q = gass_data::noisy_queries(&base, 3 * num_queries(), 0.01, 997);
    let hard_q = gass_data::noisy_queries(&base, num_queries(), 0.50, 998);
    let mut queries = VectorStore::new(dim);
    for (_, row) in easy_q.iter().chain(hard_q.iter()) {
        queries.push(row);
    }
    let easy = easy_q.len();
    let truth = gass_data::ground_truth(&base, &queries, K);

    eprintln!("building HNSW over {n} vectors ({host_cores} threads)...");
    let built = HnswIndex::build(
        base.clone(),
        HnswParams { m: 16, ef_construction: 128, seed: 404, threads: host_cores },
    );
    let mut index = PrebuiltIndex::new(
        built.store().clone(),
        built.base_graph().clone(),
        // The per-query variant: seeds derive from the query bytes, not a
        // shared stream, so repeated passes are bit-comparable.
        Box::new(RandomSeeds::per_query(n, 7)),
        "adaptive",
    );
    drop(built);
    index.align_store();
    index.freeze();

    // Fixed-beam baseline: smallest swept beam clearing the recall
    // floor; its recall is the operating point every adaptive cell must
    // hold to within RECALL_SLACK.
    let mut mono_beam = 0;
    let mut fixed_pass = (0.0, 0.0, 0.0, 0u64, Vec::new());
    for l in [16usize, 24, 32, 48, 64, 96, 128, 192, 256] {
        let params = fixed_params(K, l);
        fixed_pass = deterministic_pass(&index, &queries, &truth, easy, &params);
        mono_beam = l;
        if fixed_pass.0 >= RECALL_FLOOR {
            break;
        }
        eprintln!("fixed: L={l} recall {:.4} < {RECALL_FLOOR}, widening", fixed_pass.0);
    }
    let op_recall = fixed_pass.0;
    let fixed_p = fixed_params(K, mono_beam);
    let fixed_t = best_throughput(&index, &queries, &fixed_p);
    eprintln!(
        "fixed: L={mono_beam} recall {op_recall:.4} (easy {:.4} / hard {:.4}), \
         {:.0} QPS single-thread",
        fixed_pass.1, fixed_pass.2, fixed_t.qps
    );
    let baseline = BaselineRecord {
        beam_width: mono_beam,
        recall_at_10: op_recall,
        recall_easy: fixed_pass.1,
        recall_hard: fixed_pass.2,
        dists_per_query: fixed_pass.3 / truth.len() as u64,
        qps_1t: fixed_t.qps,
        p50_us_1t: fixed_t.p50_us,
        p99_us_1t: fixed_t.p99_us,
    };

    // Fixed is bit-identical to every never-triggering adaptive
    // configuration: same ids, same distance bits, same counter totals.
    let fixed_bit_identical = [
        fixed_p.with_term(TerminationPolicy::Saturation { patience: NEVER }),
        fixed_p.with_term(TerminationPolicy::DistRatio { eps: f32::INFINITY }),
        fixed_p.with_max_dists(NEVER),
    ]
    .iter()
    .all(|p| {
        let pass = deterministic_pass(&index, &queries, &truth, easy, p);
        pass.3 == fixed_pass.3 && pass.4 == fixed_pass.4
    });
    eprintln!(
        "fixed bit-identity vs never-triggering policies: {}",
        if fixed_bit_identical { "ok" } else { "VIOLATED" }
    );

    // The adaptive grid: a knob ladder per policy at the baseline's
    // beam. (Wider beams were also swept while tuning: adaptive cells
    // never gain recall from them on this workload — saturation stops
    // at the same expansion regardless of the cap and dist-ratio only
    // spends more before the margin closes — so the grid holds the
    // beam fixed and the knob carries the accuracy/cost trade.)
    let mut table = Table::new(vec![
        "term",
        "beam",
        "recall@10",
        "easy",
        "hard",
        "dists/query",
        "qps(1t)",
        "speedup",
        "parity",
    ]);
    table.row(vec![
        "fixed".into(),
        mono_beam.to_string(),
        format!("{:.4}", op_recall),
        format!("{:.4}", baseline.recall_easy),
        format!("{:.4}", baseline.recall_hard),
        baseline.dists_per_query.to_string(),
        format!("{:.0}", baseline.qps_1t),
        "1.00x".into(),
        "yes".into(),
    ]);
    let mut policies: Vec<TerminationPolicy> = Vec::new();
    for patience in [4usize, 8, 16, 24, 32, 48, 64] {
        policies.push(TerminationPolicy::Saturation { patience });
    }
    for eps in [0.1f32, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4] {
        policies.push(TerminationPolicy::DistRatio { eps });
    }
    let mut adaptive: Vec<AdaptivePoint> = Vec::new();
    for &policy in &policies {
        {
            let beam = mono_beam;
            let params = fixed_params(K, beam).with_term(policy);
            let (recall, r_easy, r_hard, dists, _) =
                deterministic_pass(&index, &queries, &truth, easy, &params);
            let at_parity = recall >= op_recall - RECALL_SLACK;
            let t = best_throughput(&index, &queries, &params);
            let speedup = t.qps / baseline.qps_1t.max(1e-12);
            table.row(vec![
                policy.to_string(),
                beam.to_string(),
                format!("{:.4}", recall),
                format!("{:.4}", r_easy),
                format!("{:.4}", r_hard),
                (dists / truth.len() as u64).to_string(),
                format!("{:.0}", t.qps),
                format!("{:.2}x", speedup),
                if at_parity { "yes".into() } else { "no".into() },
            ]);
            adaptive.push(AdaptivePoint {
                term: policy.to_string(),
                beam_width: beam,
                recall_at_10: recall,
                recall_easy: r_easy,
                recall_hard: r_hard,
                dists_per_query: dists / truth.len() as u64,
                qps_1t: t.qps,
                p50_us_1t: t.p50_us,
                p99_us_1t: t.p99_us,
                speedup_vs_fixed: speedup,
                at_parity,
            });
        }
    }

    let best = adaptive
        .iter()
        .filter(|p| p.at_parity)
        .max_by(|a, b| a.qps_1t.total_cmp(&b.qps_1t))
        .expect("at least one adaptive cell at recall parity");
    let headline = Headline {
        term: best.term.clone(),
        beam_width: best.beam_width,
        recall_at_10: best.recall_at_10,
        qps_1t: best.qps_1t,
        speedup_vs_fixed: best.speedup_vs_fixed,
    };
    let meets_target = headline.speedup_vs_fixed >= SPEEDUP_TARGET;
    drop(index);

    // Sharded routing: adaptive probing turns nprobe into a cap. The
    // fixed plan always probes the full cap; the adaptive plan stops
    // once further probes stop improving the merged top-k — fewer mean
    // probes at unchanged recall.
    let shards = 8usize;
    let counter = DistCounter::new();
    eprintln!("sharded: partitioning into {shards} shards + building per-shard HNSW...");
    let mut sharded_idx =
        ShardedIndex::build_with(&base, &ShardedParams::new(shards), &counter, |s, sub| {
            let built = HnswIndex::build(
                sub.clone(),
                HnswParams { m: 16, ef_construction: 128, seed: 404 ^ s as u64, threads: 1 },
            );
            let graph = built.base_graph().clone();
            let seeds: Box<dyn SeedProvider> = Box::new(RandomSeeds::per_query(sub.len(), 7));
            (graph, seeds)
        });
    sharded_idx.align_store();
    sharded_idx.freeze();
    let cap = 4usize;
    sharded_idx.set_nprobe(cap);
    let mut stable = Table::new(vec!["term", "cap", "mean_probes", "recall@10", "dists/query"]);
    let mut sharded: Vec<ShardedPoint> = Vec::new();
    let shard_policies = [
        ("fixed".to_string(), fixed_params(K, mono_beam)),
        (
            "saturation:1".to_string(),
            fixed_params(K, mono_beam).with_term(TerminationPolicy::Saturation { patience: 1 }),
        ),
        (
            "saturation:2".to_string(),
            fixed_params(K, mono_beam).with_term(TerminationPolicy::Saturation { patience: 2 }),
        ),
        (
            "distratio:0.2".to_string(),
            fixed_params(K, mono_beam).with_term(TerminationPolicy::DistRatio { eps: 0.2 }),
        ),
    ];
    for (name, params) in &shard_policies {
        let c = DistCounter::new();
        let mut recall = 0.0;
        let mut probes = 0usize;
        for (qi, row) in truth.iter().enumerate() {
            let (res, p) = sharded_idx.search_with_probes(queries.get(qi as u32), params, &c);
            recall += recall_at_k(row, &res.neighbors, K);
            probes += p;
        }
        let point = ShardedPoint {
            term: name.clone(),
            nprobe_cap: cap,
            mean_probes: probes as f64 / truth.len() as f64,
            recall_at_10: recall / truth.len() as f64,
            dists_per_query: c.get() / truth.len() as u64,
        };
        stable.row(vec![
            point.term.clone(),
            cap.to_string(),
            format!("{:.2}", point.mean_probes),
            format!("{:.4}", point.recall_at_10),
            point.dists_per_query.to_string(),
        ]);
        sharded.push(point);
    }
    let sharded_fixed_recall = sharded[0].recall_at_10;
    let sharded_fewer_probes_at_parity = sharded[1..].iter().any(|p| {
        p.mean_probes < cap as f64 && p.recall_at_10 >= sharded_fixed_recall - RECALL_SLACK
    });

    let record = Record {
        experiment: "ext_adaptive",
        dataset: "deep",
        n,
        dim,
        num_queries: truth.len(),
        easy_queries: easy,
        hard_queries: truth.len() - easy,
        k: K,
        rounds: ROUNDS,
        host_cores,
        simd_backend: gass_core::simd_backend(),
        fixed_bit_identical,
        baseline,
        adaptive,
        speedup_target: SPEEDUP_TARGET,
        meets_target,
        headline,
        sharded_shards: shards,
        sharded,
        sharded_fewer_probes_at_parity,
        notes: String::new(),
    };

    println!("{}", table.render());
    println!("{}", stable.render());
    println!(
        "headline: {} at beam {} -> recall@10 {:.4} at {:.0} QPS, {:.2}x the fixed-beam \
         single-thread baseline (target {SPEEDUP_TARGET}x: {}); fixed bit-identity {}; \
         adaptive sharded probing under the nprobe cap at parity: {}",
        record.headline.term,
        record.headline.beam_width,
        record.headline.recall_at_10,
        record.headline.qps_1t,
        record.headline.speedup_vs_fixed,
        if record.meets_target { "met" } else { "MISSED" },
        if record.fixed_bit_identical { "ok" } else { "VIOLATED" },
        if record.sharded_fewer_probes_at_parity { "yes" } else { "NO" },
    );
    let path = write_json(&results_dir(), "ext_adaptive", &record).expect("write results");
    println!("wrote {}", path.display());
}

/// The shared parameter base: explicit `Fixed` so a `GASS_TERM` in the
/// environment cannot skew the baseline.
fn fixed_params(k: usize, beam: usize) -> QueryParams {
    QueryParams::new(k, beam)
        .with_seed_count(16)
        .with_term(TerminationPolicy::Fixed)
        .with_max_dists(0)
}
