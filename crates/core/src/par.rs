//! Parallelism substrate shared by every graph method, the data tooling,
//! and the evaluation harness.
//!
//! The paper's experiments run on multi-core machines; ParlayANN
//! (arXiv:2305.04359) shows that batch-parallel construction with
//! prefix-doubling batches reaches order-of-magnitude speedups with no
//! recall loss, and Faiss (arXiv:2401.08281) shows that a *single shared*
//! parallel substrate is what lets many index types scale uniformly. This
//! module is that substrate:
//!
//! * [`par_for`] / [`par_map`] / [`par_map_with`] — scoped worker-pool
//!   helpers over an index range. `threads <= 1` runs inline on the caller
//!   thread, executing exactly the code a serial loop would, so serial
//!   builds stay bit-for-bit reproducible.
//! * [`par_workers`] — worker-indexed fan-out for dynamic work queues
//!   (query throughput measurement).
//! * [`ConcurrentAdjacency`] — a graph under construction that many
//!   workers may mutate at once, with striped locks over node
//!   neighborhoods, freezable into the ordinary [`AdjacencyGraph`].
//! * [`prefix_doubling_batches`] — the ParlayANN batch schedule for
//!   incremental-insertion methods: batch `i` is searched against the
//!   graph of batches `< i`, so early inserts still see a mostly built
//!   graph.
//!
//! Everything here is plain `std` (scoped threads, mutexes, atomics); the
//! workspace builds offline and carries no threading dependencies.
//!
//! Distance accounting stays exact in all of this: `DistCounter` is a
//! shared relaxed atomic, so clones handed to workers all bump the same
//! total.

use crate::graph::{AdjacencyGraph, GraphView};
use std::cell::UnsafeCell;
use std::ops::Range;
use std::sync::Mutex;

/// Resolves a `threads` knob: `0` means "all available cores", anything
/// else is taken as given.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    }
}

fn shard(n: usize, workers: usize) -> impl Iterator<Item = Range<usize>> {
    let chunk = n.div_ceil(workers.max(1)).max(1);
    (0..workers).map(move |w| {
        let lo = (w * chunk).min(n);
        let hi = ((w + 1) * chunk).min(n);
        lo..hi
    })
}

/// Runs `f` over contiguous shards of `0..n` on up to `threads` workers.
/// With `threads <= 1` (or a trivial range) `f(0..n)` runs inline on the
/// caller's thread — no pool, no reordering, the exact serial behavior.
pub fn par_for<F>(threads: usize, n: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let t = effective_threads(threads).min(n.max(1));
    if t <= 1 {
        f(0..n);
        return;
    }
    std::thread::scope(|scope| {
        for range in shard(n, t) {
            if range.is_empty() {
                continue;
            }
            let f = &f;
            scope.spawn(move || f(range));
        }
    });
}

/// Order-preserving parallel map over `0..n`: returns
/// `vec![f(0), f(1), ..]` regardless of worker count.
pub fn par_map<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_with(threads, n, || (), |(), i| f(i))
}

/// [`par_map`] with per-worker reusable state (the per-thread
/// `SearchScratch` pool pattern): `init` runs once on each worker, and the
/// state it builds is threaded through that worker's calls to `f`. Outputs
/// are returned in index order.
pub fn par_map_with<S, R, I, F>(threads: usize, n: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let t = effective_threads(threads).min(n.max(1));
    if t <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(t);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(t);
        for range in shard(n, t) {
            if range.is_empty() {
                continue;
            }
            let (init, f) = (&init, &f);
            handles.push(scope.spawn(move || {
                let mut state = init();
                range.map(|i| f(&mut state, i)).collect::<Vec<R>>()
            }));
        }
        for h in handles {
            parts.push(h.join().expect("parallel worker panicked"));
        }
    });
    parts.into_iter().flatten().collect()
}

/// Spawns `threads` workers, calling `f(worker_index)` on each. With
/// `threads <= 1`, runs `f(0)` inline. For dynamic work distribution the
/// callers share an atomic cursor; this helper only owns the fan-out.
pub fn par_workers<F>(threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let t = effective_threads(threads);
    if t <= 1 {
        f(0);
        return;
    }
    std::thread::scope(|scope| {
        for w in 0..t {
            let f = &f;
            scope.spawn(move || f(w));
        }
    });
}

/// The ParlayANN-style batch schedule for incremental-insertion builds:
/// nodes `0..first` form the serial seed prefix, then batch sizes double
/// (`first`, `2*first`, ...) until `n` is covered. Within a batch, members
/// search the graph of all previous batches; doubling keeps the unsearched
/// fraction of the graph bounded, which is what preserves recall.
pub fn prefix_doubling_batches(first: usize, n: usize) -> Vec<Range<usize>> {
    let first = first.max(1);
    let mut out = Vec::new();
    let mut start = first.min(n);
    let mut size = first;
    while start < n {
        let end = (start + size).min(n);
        out.push(start..end);
        start = end;
        size = size.saturating_mul(2);
    }
    out
}

/// [`prefix_doubling_batches`] with every batch capped at `1/frac` of the
/// prefix already built. Pure doubling ends with a final batch holding
/// nearly half the nodes, all blind to each other during their searches;
/// the cap bounds that blindness (and the resulting recall loss) to a
/// constant fraction per batch while still growing batches geometrically.
pub fn bounded_prefix_batches(first: usize, frac: usize, n: usize) -> Vec<Range<usize>> {
    let first = first.max(1);
    let frac = frac.max(1);
    let mut out = Vec::new();
    let mut start = first.min(n);
    while start < n {
        let size = (start / frac).max(first);
        let end = (start + size).min(n);
        out.push(start..end);
        start = end;
    }
    out
}

const STRIPES: usize = 64;

/// A graph under concurrent construction: per-node neighbor lists guarded
/// by striped locks, so workers applying edges contend only when they
/// touch nodes on the same stripe.
///
/// Two access modes, matching the two phases of a batch build:
///
/// * **Search phase** (no writers): the [`GraphView`] impl reads neighbor
///   lists without locking, so `beam_search` runs at full speed over the
///   frozen prefix. Callers must guarantee no concurrent mutation — batch
///   algorithms do, because search and apply phases are separated by the
///   scope join barrier in [`par_for`]/[`par_map`].
/// * **Apply phase** (concurrent writers): all mutation and any read that
///   overlaps mutation goes through [`Self::with`]/[`Self::snapshot`],
///   which take the node's stripe lock.
pub struct ConcurrentAdjacency {
    lists: Vec<UnsafeCell<Vec<u32>>>,
    locks: Vec<Mutex<()>>,
}

// SAFETY: all mutation of `lists` happens inside `with`, which holds the
// stripe mutex for the node; the unlocked GraphView read path is only used
// in phases with no concurrent writers (see type-level docs).
unsafe impl Sync for ConcurrentAdjacency {}

impl ConcurrentAdjacency {
    /// A graph of `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Self::with_degree_hint(n, 0)
    }

    /// A graph of `n` isolated nodes with `degree_hint` slots reserved per
    /// neighbor list.
    pub fn with_degree_hint(n: usize, degree_hint: usize) -> Self {
        let lists = (0..n).map(|_| UnsafeCell::new(Vec::with_capacity(degree_hint))).collect();
        let locks = (0..STRIPES.min(n.max(1))).map(|_| Mutex::new(())).collect();
        Self { lists, locks }
    }

    /// Takes over an already (partially) built serial graph — how the II
    /// methods hand their serial seed prefix to the parallel batches.
    pub fn from_adjacency(g: AdjacencyGraph) -> Self {
        let lists: Vec<UnsafeCell<Vec<u32>>> =
            g.into_lists().into_iter().map(UnsafeCell::new).collect();
        let locks = (0..STRIPES.min(lists.len().max(1))).map(|_| Mutex::new(())).collect();
        Self { lists, locks }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.lists.len()
    }

    fn stripe(&self, node: u32) -> &Mutex<()> {
        &self.locks[node as usize % self.locks.len()]
    }

    /// Runs `f` with exclusive access to `node`'s neighbor list.
    pub fn with<R>(&self, node: u32, f: impl FnOnce(&mut Vec<u32>) -> R) -> R {
        let _guard = self.stripe(node).lock().unwrap();
        // SAFETY: the stripe lock covering `node` is held, and every
        // mutable access path goes through this method.
        f(unsafe { &mut *self.lists[node as usize].get() })
    }

    /// Locked copy of `node`'s neighbor list (safe to call while other
    /// workers mutate).
    pub fn snapshot(&self, node: u32) -> Vec<u32> {
        self.with(node, |list| list.clone())
    }

    /// Adds `from -> to` unless it exists or is a self-loop (the
    /// [`AdjacencyGraph::add_edge`] contract). Returns `true` if added.
    pub fn add_edge(&self, from: u32, to: u32) -> bool {
        if from == to {
            return false;
        }
        self.with(from, |list| {
            if list.contains(&to) {
                false
            } else {
                list.push(to);
                true
            }
        })
    }

    /// Adds both directions. The two stripe locks are taken one at a time,
    /// so no lock ordering issues arise.
    pub fn add_undirected(&self, a: u32, b: u32) {
        self.add_edge(a, b);
        self.add_edge(b, a);
    }

    /// Replaces `node`'s neighbor list wholesale (post-pruning).
    pub fn set_neighbors(&self, node: u32, neighbors: Vec<u32>) {
        debug_assert!(!neighbors.contains(&node), "self-loop in neighbor list");
        self.with(node, |list| *list = neighbors);
    }

    /// Freezes into the ordinary serial graph. Consumes `self`, so every
    /// outstanding borrow (and thus every worker) is provably done.
    pub fn freeze(self) -> AdjacencyGraph {
        AdjacencyGraph::from_lists(self.lists.into_iter().map(UnsafeCell::into_inner).collect())
    }
}

impl GraphView for ConcurrentAdjacency {
    fn num_nodes(&self) -> usize {
        self.lists.len()
    }

    #[inline]
    fn neighbors(&self, node: u32) -> &[u32] {
        // SAFETY: see type-level docs — callers only use the GraphView
        // read path in phases with no concurrent writers.
        unsafe { &*self.lists[node as usize].get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn par_for_covers_every_index_once() {
        for threads in [1, 2, 4, 7] {
            let hits: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
            par_for(threads, hits.len(), |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "threads={threads}");
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let serial: Vec<usize> = (0..57).map(|i| i * i).collect();
        for threads in [1, 2, 4, 8] {
            assert_eq!(par_map(threads, 57, |i| i * i), serial, "threads={threads}");
        }
    }

    #[test]
    fn par_map_with_reuses_worker_state() {
        let inits = AtomicUsize::new(0);
        let out = par_map_with(
            4,
            100,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |scratch, i| {
                scratch.push(i);
                scratch.len()
            },
        );
        assert_eq!(out.len(), 100);
        // One init per worker, not per item.
        assert!(inits.load(Ordering::Relaxed) <= 4);
        // Within a worker's shard the reused state grows monotonically.
        assert_eq!(out[0], 1);
    }

    #[test]
    fn par_workers_indexes_are_distinct() {
        let seen: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        par_workers(4, |w| {
            seen[w].fetch_add(1, Ordering::Relaxed);
        });
        assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn prefix_doubling_covers_exactly_once() {
        for (first, n) in [(1, 1), (8, 7), (8, 8), (8, 9), (16, 2000), (100, 101)] {
            let batches = prefix_doubling_batches(first, n);
            let mut next = first.min(n);
            for b in &batches {
                assert_eq!(b.start, next, "first={first} n={n}");
                assert!(b.end > b.start);
                next = b.end;
            }
            assert_eq!(next, n, "first={first} n={n}");
            if batches.len() >= 2 {
                assert!(batches[1].len() <= 2 * batches[0].len().max(first));
            }
        }
    }

    #[test]
    fn concurrent_adjacency_matches_serial_semantics() {
        let conc = ConcurrentAdjacency::new(5);
        assert!(!conc.add_edge(0, 0), "self-loop rejected");
        assert!(conc.add_edge(0, 1));
        assert!(!conc.add_edge(0, 1), "duplicate rejected");
        conc.add_undirected(2, 3);
        conc.set_neighbors(4, vec![0, 1]);
        let g = conc.freeze();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.neighbors(3), &[2]);
        assert_eq!(g.neighbors(4), &[0, 1]);
    }

    #[test]
    fn concurrent_writes_land_from_all_workers() {
        let n = 200usize;
        let conc = ConcurrentAdjacency::with_degree_hint(n, 4);
        // Every worker adds a ring edge set offset by its shard; all edges
        // must survive the contention.
        par_for(4, n, |range| {
            for i in range {
                let u = i as u32;
                conc.add_undirected(u, ((i + 1) % n) as u32);
                conc.add_undirected(u, ((i + 7) % n) as u32);
            }
        });
        let g = conc.freeze();
        for u in 0..n {
            assert!(g.neighbors(u as u32).contains(&(((u + 1) % n) as u32)));
            assert!(g.neighbors(u as u32).contains(&(((u + 7) % n) as u32)));
        }
        assert_eq!(g.num_edges(), n * 4);
    }

    #[test]
    fn from_adjacency_round_trips() {
        let mut g = AdjacencyGraph::new(3);
        g.set_neighbors(0, vec![1, 2]);
        g.set_neighbors(2, vec![0]);
        let conc = ConcurrentAdjacency::from_adjacency(g);
        assert_eq!(conc.snapshot(0), vec![1, 2]);
        conc.add_edge(1, 0);
        let back = conc.freeze();
        assert_eq!(back.neighbors(1), &[0]);
        assert_eq!(back.neighbors(2), &[0]);
    }
}
