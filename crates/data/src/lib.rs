//! # gass-data
//!
//! Workloads for the GASS experiments: synthetic analogs of the paper's
//! seven real dataset collections and three power-law distributions,
//! query-set construction (held-out, noisy-hardness, out-of-distribution),
//! and parallel exact ground truth.
//!
//! See `DESIGN.md` §4 for the substitution rationale: the paper's real
//! collections (up to 1B vectors) are replaced by generators that control
//! the intrinsic properties — LID, LRC, cluster structure, skew — that
//! drive the relative behaviour of graph methods.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod datasets;
pub mod ground_truth;
pub mod queries;
pub mod stream;
pub mod synth;
pub mod util;

pub use datasets::DatasetKind;
pub use ground_truth::{exact_knn, ground_truth};
pub use queries::{holdout_split, noisy_queries, t2i_queries};
