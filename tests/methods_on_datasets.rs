//! Cross-crate integration: every method builds on several dataset
//! analogs and reaches a floor recall at a generous beam width — the
//! minimum bar for calling an implementation "working" before the figure
//! harnesses compare them quantitatively.

use gass::prelude::*;
use gass_eval::{evaluate_at, evaluate_params};

fn run_roster(kinds: &[MethodKind], dataset: DatasetKind, n: usize, floor: f64) {
    let (base, queries) = dataset.generate(n, 10, 404);
    let k = 10;
    let truth = gass::data::ground_truth(&base, &queries, k);
    // A forced codec serves these floors through approximate code-space
    // traversal; the exact rerank restores recall as long as the pool
    // contains the true neighbors, so the coarser the codec the deeper
    // the pool must be (PQ keeps ~0.67 bits/dim vs SQ4's 4 and SQ8's 8).
    let rerank = match gass::core::quant_forced() {
        Some(gass::core::CodecSpec::Pq { .. }) => 32,
        Some(_) => 8,
        None => 4,
    };
    let params = QueryParams::new(k, 96).with_seed_count(16).with_rerank_factor(rerank);
    for &kind in kinds {
        let built = build_method(kind, base.clone(), 17);
        let p = evaluate_params(built.index.as_ref(), &queries, &truth, &params);
        // The paper singles LSHAPG out as needing more computation for
        // high accuracy (its probabilistic routing prunes promising
        // neighbors); hold it to a proportionally lower floor.
        let floor = if kind == MethodKind::Lshapg { floor - 0.10 } else { floor };
        assert!(
            p.recall >= floor,
            "{} on {}: recall {:.3} below floor {floor}",
            kind.name(),
            dataset.name(),
            p.recall
        );
        assert!(p.dist_calcs > 0, "{} reported no work", kind.name());
    }
}

#[test]
fn all_methods_work_on_easy_data() {
    run_roster(&MethodKind::all_sota(), DatasetKind::Deep, 600, 0.80);
}

#[test]
fn scalable_methods_work_on_sift_like() {
    run_roster(&MethodKind::scalable(), DatasetKind::Sift, 600, 0.80);
}

#[test]
fn scalable_methods_survive_hard_data() {
    // Seismic-like is the paper's hardest dataset: the bar is lower
    // (the paper itself reports no method above 0.8 recall at 25GB).
    run_roster(&MethodKind::scalable(), DatasetKind::Seismic, 500, 0.45);
}

#[test]
fn methods_handle_power_law_distributions() {
    run_roster(
        &[MethodKind::Hnsw, MethodKind::Elpis, MethodKind::Vamana],
        DatasetKind::RandPow(50),
        500,
        0.60,
    );
}

#[test]
fn out_of_distribution_queries_are_answerable() {
    // Text-to-Image analog: queries come from a shifted distribution.
    let (base, queries) = DatasetKind::TextToImage.generate(600, 10, 5);
    let truth = gass::data::ground_truth(&base, &queries, 10);
    let built = build_method(MethodKind::Hnsw, base, 3);
    let p = evaluate_at(built.index.as_ref(), &queries, &truth, 10, 128, 16);
    assert!(p.recall > 0.5, "OOD recall collapsed: {:.3}", p.recall);
}
