//! A minimal blocking client for the serving protocol.
//!
//! Used by the CLI e2e tests and the `ext_serve` load generator; speaks
//! exactly the [`crate::protocol`] encoders/decoders, so every client
//! round-trip also exercises the real wire format.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, QueryRequest, Request, Response,
};
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

/// One blocking connection to a `gass serve` instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, writer: BufWriter::new(stream) })
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &encode_request(req))?;
        match read_frame(&mut self.reader)? {
            Some(payload) => decode_response(&payload),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            )),
        }
    }

    /// One k-NN query with explicit search parameters.
    pub fn query(&mut self, q: QueryRequest) -> io::Result<Response> {
        self.request(&Request::Query(q))
    }

    /// One k-NN query with the serving defaults (`seed_count 16`,
    /// `rerank_factor 4`, no deadline).
    pub fn query_simple(
        &mut self,
        query: &[f32],
        k: usize,
        beam_width: usize,
    ) -> io::Result<Response> {
        self.query(QueryRequest {
            k,
            beam_width,
            seed_count: 16,
            rerank_factor: 4,
            deadline_us: 0,
            query: query.to_vec(),
        })
    }

    /// Fetches the stats-endpoint JSON document.
    pub fn stats(&mut self) -> io::Result<String> {
        match self.request(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a stats response, got {other:?}"),
            )),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a pong, got {other:?}"),
            )),
        }
    }

    /// Requests an orderly server shutdown (drain, then exit).
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a shutdown ack, got {other:?}"),
            )),
        }
    }
}
