//! Figure 16: query performance at the largest (1B-analog) tier — HNSW,
//! ELPIS (with intra-query parallelism) and Vamana.
//!
//! Paper shape: ELPIS up to an order of magnitude faster to 0.95 accuracy
//! thanks to multi-threaded single-query answering.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig16_search_1b
//! ```

use gass_bench::{beam_sweep, num_queries, results_dir, tiers};
use gass_data::DatasetKind;
use gass_eval::{sweep, Table};
use gass_graphs::{build_method, ElpisIndex, ElpisParams, HnswParams, MethodKind};

fn main() {
    let n = tiers()[3].n;
    let k = 10;
    let (base, queries) = DatasetKind::Deep.generate(n, num_queries(), 107);
    let truth = gass_data::ground_truth(&base, &queries, k);

    let mut table =
        Table::new(vec!["method", "L", "recall", "dist_calcs_per_query", "ms_per_query"]);
    for kind in MethodKind::scalable() {
        let built = build_method(kind, base.clone(), 107);
        for p in sweep(built.index.as_ref(), &queries, &truth, k, &beam_sweep(), 16) {
            table.row(vec![
                kind.name(),
                p.beam_width.to_string(),
                format!("{:.4}", p.recall),
                (p.dist_calcs / queries.len() as u64).to_string(),
                format!("{:.3}", p.seconds * 1e3 / queries.len() as f64),
            ]);
        }
        eprintln!("done: {}", kind.name());
    }

    // ELPIS with intra-query parallelism — the configuration behind its
    // Fig. 16 wall-clock lead.
    let leaf = (n / 8).clamp(128, 4096);
    let par = ElpisIndex::build(
        base.clone(),
        ElpisParams {
            leaf_size: leaf,
            hnsw: HnswParams { m: 10, ef_construction: 64, seed: 107, threads: 1 },
            nprobe: 8,
            parallel_query: true,
            ..ElpisParams::small()
        },
    );
    for p in sweep(&par, &queries, &truth, k, &beam_sweep(), 16) {
        table.row(vec![
            "ELPIS(par)".to_string(),
            p.beam_width.to_string(),
            format!("{:.4}", p.recall),
            (p.dist_calcs / queries.len() as u64).to_string(),
            format!("{:.3}", p.seconds * 1e3 / queries.len() as f64),
        ]);
    }
    eprintln!("done: ELPIS(par)");

    table.emit(&results_dir(), "fig16_search_1b").expect("write results");
    println!(
        "Read as Fig. 16: compare ms_per_query at ~0.95 recall; ELPIS(par) \
         should be fastest in wall-clock even where its dist calls match \
         sequential ELPIS."
    );
}
