//! Quickstart: build an HNSW index on a synthetic Deep1B-like collection,
//! answer 10-NN queries, and measure recall and distance calculations.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gass::prelude::*;

fn main() {
    // --- 1. Data -----------------------------------------------------
    // 20k vectors, 96 dimensions, from the Deep1B-like generator (an
    // "easy" dataset in the paper's LID/LRC sense).
    let n = 20_000;
    let base = gass::data::synth::deep_like(n, 42);
    let queries = gass::data::synth::deep_like(100, 7);
    println!("dataset: {} x {}d, {} queries", base.len(), base.dim(), queries.len());

    // --- 2. Index ----------------------------------------------------
    let t0 = std::time::Instant::now();
    let index = HnswIndex::build(
        base.clone(),
        HnswParams { m: 16, ef_construction: 128, seed: 1, threads: 1 },
    );
    let report = index.build_report();
    println!(
        "built HNSW in {:.2}s ({} construction distance calcs)",
        t0.elapsed().as_secs_f64(),
        report.dist_calcs
    );

    // --- 3. Ground truth + search ------------------------------------
    let k = 10;
    let truth = gass::data::ground_truth(&base, &queries, k);

    for beam_width in [10usize, 20, 40, 80, 160] {
        let counter = DistCounter::new();
        let params = QueryParams::new(k, beam_width);
        let t = std::time::Instant::now();
        let mut recall_sum = 0.0;
        for (qi, t_row) in truth.iter().enumerate() {
            let res = index.search(queries.get(qi as u32), &params, &counter);
            recall_sum += gass::eval::recall_at_k(t_row, &res.neighbors, k);
        }
        println!(
            "L={beam_width:<4} recall@10={:.4}  dist_calcs/query={:<8} time/query={:.3}ms",
            recall_sum / truth.len() as f64,
            counter.get() / truth.len() as u64,
            t.elapsed().as_secs_f64() * 1000.0 / truth.len() as f64,
        );
    }

    // --- 4. The search is the paper's Algorithm 1 ---------------------
    // Every method in this workspace answers queries through the same
    // beam search; try swapping `HnswIndex` for `VamanaIndex`,
    // `ElpisIndex`, or any `MethodKind` via `build_method`.
}
