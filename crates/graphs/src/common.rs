//! Shared construction utilities used by several methods: reverse-edge
//! insertion with pruning, DFS connectivity repair, exact per-subset k-NN
//! graphs, and the build report every method returns.

use gass_core::distance::Space;
use gass_core::graph::{AdjacencyGraph, GraphView};
use gass_core::nd::NdStrategy;
use gass_core::neighbor::{BoundedMaxHeap, Neighbor};
use gass_core::par::ConcurrentAdjacency;

/// What a build cost: wall-clock seconds and counted distance calls
/// (Figures 7–8 and Table 2 inputs).
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildReport {
    /// Wall-clock construction time in seconds.
    pub seconds: f64,
    /// Distance evaluations performed during construction.
    pub dist_calcs: u64,
}

/// Adds the reverse edge `to -> from` for every selected neighbor; when a
/// reverse list exceeds `max_degree` it is re-pruned with `nd` (the
/// standard HNSW/NSG/Vamana overflow handling).
pub fn add_reverse_edges(
    space: Space<'_>,
    graph: &mut AdjacencyGraph,
    from: u32,
    neighbors: &[Neighbor],
    max_degree: usize,
    nd: NdStrategy,
) {
    for nb in neighbors {
        let added = graph.add_edge(nb.id, from);
        if added && graph.neighbors(nb.id).len() > max_degree {
            // Re-score the overflowing list relative to its owner and
            // re-prune.
            let owner = nb.id;
            let scored: Vec<Neighbor> = graph
                .neighbors(owner)
                .iter()
                .map(|&v| Neighbor::new(v, space.dist(owner, v)))
                .collect();
            let kept = nd.diversify(space, owner, &scored, max_degree);
            graph.set_neighbors(owner, kept.into_iter().map(|n| n.id).collect());
        }
    }
}

/// [`add_reverse_edges`] against a [`ConcurrentAdjacency`]: each reverse
/// list is mutated — and re-pruned on overflow — under its owner's stripe
/// lock, so workers in a batch's apply phase insert their edges
/// concurrently. Only one stripe lock is held at a time (pruning computes
/// distances but takes no further locks), so no deadlock is possible.
pub fn add_reverse_edges_concurrent(
    space: Space<'_>,
    graph: &ConcurrentAdjacency,
    from: u32,
    neighbors: &[Neighbor],
    max_degree: usize,
    nd: NdStrategy,
) {
    for nb in neighbors {
        if nb.id == from {
            continue;
        }
        graph.with(nb.id, |list| {
            if list.contains(&from) {
                return;
            }
            list.push(from);
            if list.len() > max_degree {
                let owner = nb.id;
                let scored: Vec<Neighbor> =
                    list.iter().map(|&v| Neighbor::new(v, space.dist(owner, v))).collect();
                let kept = nd.diversify(space, owner, &scored, max_degree);
                list.clear();
                list.extend(kept.into_iter().map(|n| n.id));
            }
        });
    }
}

/// NSG-style connectivity repair: ensures every node is reachable from
/// `root` by attaching each unreachable node to its nearest reachable
/// node (nearest among a sampled subset for efficiency; exact for small
/// graphs). Returns the number of repaired nodes.
pub fn repair_connectivity(space: Space<'_>, graph: &mut AdjacencyGraph, root: u32) -> usize {
    let mut repaired = 0;
    loop {
        let seen = graph.reachable_from(root);
        let Some(orphan) = seen.iter().position(|&s| !s) else {
            return repaired;
        };
        let orphan = orphan as u32;
        // Attach the orphan to its nearest reachable node.
        let mut best: Option<Neighbor> = None;
        for v in 0..graph.num_nodes() as u32 {
            if seen[v as usize] {
                let d = space.dist(orphan, v);
                if best.is_none_or(|b| d < b.dist) {
                    best = Some(Neighbor::new(v, d));
                }
            }
        }
        let anchor = best.expect("root is always reachable").id;
        graph.add_undirected(anchor, orphan);
        repaired += 1;
    }
}

/// Exact k-NN lists inside an id subset (SPTAG's per-leaf graph): for each
/// member, its `k` nearest *other* members, by brute force. Distances are
/// counted.
pub fn exact_knn_subset(space: Space<'_>, ids: &[u32], k: usize) -> Vec<Vec<Neighbor>> {
    ids.iter()
        .map(|&u| {
            let mut heap = BoundedMaxHeap::new(k.max(1));
            for &v in ids {
                if v != u {
                    heap.push(Neighbor::new(v, space.dist(u, v)));
                }
            }
            heap.into_sorted()
        })
        .collect()
}

/// Scores a plain id list against a stored query node, producing
/// `Neighbor`s (counted).
pub fn score_ids(space: Space<'_>, query_id: u32, ids: &[u32]) -> Vec<Neighbor> {
    ids.iter()
        .filter(|&&v| v != query_id)
        .map(|&v| Neighbor::new(v, space.dist(query_id, v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::distance::DistCounter;
    use gass_core::store::VectorStore;

    fn line(n: usize) -> VectorStore {
        VectorStore::from_flat(1, (0..n).map(|i| i as f32).collect())
    }

    #[test]
    fn reverse_edges_added_and_pruned() {
        let store = line(5);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut g = AdjacencyGraph::new(5);
        // Node 2 selected neighbors 0,1,3,4.
        let sel: Vec<Neighbor> =
            [0u32, 1, 3, 4].iter().map(|&v| Neighbor::new(v, space.dist(2, v))).collect();
        g.set_neighbors(2, sel.iter().map(|n| n.id).collect());
        add_reverse_edges(space, &mut g, 2, &sel, 2, NdStrategy::NoNd);
        for v in [0u32, 1, 3, 4] {
            assert!(g.neighbors(v).contains(&2), "reverse edge missing on {v}");
            assert!(g.neighbors(v).len() <= 2);
        }
    }

    #[test]
    fn connectivity_repair_reaches_everything() {
        let store = line(6);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut g = AdjacencyGraph::new(6);
        // Two disconnected chains: 0-1-2 and 3-4-5.
        g.add_undirected(0, 1);
        g.add_undirected(1, 2);
        g.add_undirected(3, 4);
        g.add_undirected(4, 5);
        assert!(!g.is_connected_from(0));
        let repaired = repair_connectivity(space, &mut g, 0);
        assert!(repaired >= 1);
        assert!(g.is_connected_from(0));
        // The repair should use the geometrically nearest bridge (2 -> 3).
        assert!(g.neighbors(3).contains(&2) || g.neighbors(2).contains(&3));
    }

    #[test]
    fn exact_knn_subset_is_exact() {
        let store = line(10);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let ids = vec![0u32, 2, 5, 9];
        let lists = exact_knn_subset(space, &ids, 2);
        // For id 5: nearest in subset are 2 (d=9) then 9 (d=16).
        assert_eq!(lists[2][0].id, 2);
        assert_eq!(lists[2][1].id, 9);
        // No self-references.
        for (i, list) in lists.iter().enumerate() {
            assert!(list.iter().all(|n| n.id != ids[i]));
        }
    }

    #[test]
    fn score_ids_excludes_self() {
        let store = line(4);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let scored = score_ids(space, 1, &[0, 1, 2]);
        assert_eq!(scored.len(), 2);
        assert!(scored.iter().all(|n| n.id != 1));
    }
}
