//! Neighborhood Diversification (ND) strategies — Section 3.4 of the paper.
//!
//! ND sparsifies a node's candidate neighbor list so edges point in
//! *diverse* directions, which indirectly creates long-range links and cuts
//! redundant distance evaluations during search. The three strategies from
//! the paper:
//!
//! * **RND** (Definition 3, used by HNSW/NSG/SPTAG/ELPIS): keep `Xj` iff for
//!   every already-kept `Xi`: `dist(Xq, Xj) < dist(Xi, Xj)`.
//! * **RRND** (Definition 4, Vamana): keep `Xj` iff for every kept `Xi`:
//!   `dist(Xq, Xj) < α · dist(Xi, Xj)`, `α ≥ 1`. Reduces to RND at `α = 1`.
//! * **MOND** (Definition 5, DPG/SSG): keep `Xj` iff the angle
//!   `∠(Xi Xq Xj) > θ` for every kept `Xi`, `θ ≥ 60°`.
//!
//! All three follow the same greedy template: visit candidates in order of
//! increasing distance to `Xq`; a candidate that survives the pairwise test
//! against every previously kept neighbor is kept, until `max_degree`
//! neighbors are kept.
//!
//! Distances are squared Euclidean throughout (the tests are monotone under
//! squaring; MOND's angle is computed from squared distances via the law of
//! cosines).

use crate::distance::Space;
use crate::neighbor::Neighbor;
use serde::{Deserialize, Serialize};

/// Which diversification rule to apply when pruning a candidate list.
///
/// ```
/// use gass_core::{DistCounter, NdStrategy, Neighbor, Space, VectorStore};
///
/// // Node 0 with three candidates; 1 and 2 point the same way.
/// let store = VectorStore::from_flat(2, vec![
///     0.0, 0.0, // 0: the node being wired
///     1.0, 0.0, // 1: closest
///     1.6, 0.1, // 2: behind 1 (redundant direction)
///     0.0, 1.5, // 3: orthogonal direction
/// ]);
/// let counter = DistCounter::new();
/// let space = Space::new(&store, &counter);
/// let cands: Vec<Neighbor> = (1..4)
///     .map(|i| Neighbor::new(i, gass_core::l2_sq(store.get(0), store.get(i))))
///     .collect();
///
/// let kept = NdStrategy::Rnd.diversify(space, 0, &cands, 8);
/// let ids: Vec<u32> = kept.iter().map(|n| n.id).collect();
/// assert_eq!(ids, vec![1, 3]); // 2 pruned: closer to 1 than to the node
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum NdStrategy {
    /// No diversification: keep the `max_degree` closest candidates.
    NoNd,
    /// Relative Neighborhood Diversification (Definition 3).
    Rnd,
    /// Relaxed RND with relaxation factor `alpha ≥ 1` (Definition 4).
    Rrnd {
        /// Relaxation factor; the paper sweeps 1–2 and settles on 1.3.
        alpha: f32,
    },
    /// Maximum-Oriented ND with angle threshold in degrees (Definition 5).
    Mond {
        /// Minimum allowed angle `∠(Xi Xq Xj)`; the paper sweeps 50°–80°
        /// and settles on 60°.
        theta_deg: f32,
    },
}

impl NdStrategy {
    /// The paper's tuned RRND setting (`α = 1.3`).
    pub fn rrnd_default() -> Self {
        NdStrategy::Rrnd { alpha: 1.3 }
    }

    /// The paper's tuned MOND setting (`θ = 60°`).
    pub fn mond_default() -> Self {
        NdStrategy::Mond { theta_deg: 60.0 }
    }

    /// Short label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            NdStrategy::NoNd => "NoND",
            NdStrategy::Rnd => "RND",
            NdStrategy::Rrnd { .. } => "RRND",
            NdStrategy::Mond { .. } => "MOND",
        }
    }

    /// Pairwise test: may candidate `j` (at squared distance `d_qj` from
    /// the query node) join a neighborhood already containing `i` (at
    /// squared distance `d_qi`), where `d_ij` is the squared distance
    /// between them?
    #[inline]
    fn pair_ok(&self, d_qj: f32, d_qi: f32, d_ij: f32) -> bool {
        match *self {
            NdStrategy::NoNd => true,
            NdStrategy::Rnd => d_qj < d_ij,
            NdStrategy::Rrnd { alpha } => d_qj < alpha * alpha * d_ij,
            NdStrategy::Mond { theta_deg } => {
                // Law of cosines at the query vertex:
                //   cos∠(XiXqXj) = (d_qi + d_qj − d_ij) / (2·√d_qi·√d_qj)
                // (all d_* squared). Keep j iff angle > θ, i.e. cos < cosθ.
                let denom = 2.0 * (d_qi * d_qj).sqrt();
                if denom == 0.0 {
                    // Candidate or kept neighbor coincides with the query
                    // node; the angle is undefined — treat as redundant.
                    return false;
                }
                let cos_angle = (d_qi + d_qj - d_ij) / denom;
                cos_angle < (theta_deg.to_radians()).cos()
            }
        }
    }

    /// Greedily diversifies `candidates` (any order; duplicates and
    /// self-references tolerated) for the node stored at id `query_id`,
    /// returning at most `max_degree` kept neighbors, closest first.
    ///
    /// Candidate-to-candidate distances are evaluated through `space` and
    /// therefore counted — ND's distance cost during construction is part
    /// of what the paper measures.
    pub fn diversify(
        &self,
        space: Space<'_>,
        query_id: u32,
        candidates: &[Neighbor],
        max_degree: usize,
    ) -> Vec<Neighbor> {
        self.diversify_by(|i, j| space.dist(i, j), query_id, candidates, max_degree)
    }

    /// [`Self::diversify`] for an external (non-stored) query point: the
    /// caller supplies the candidate-to-candidate distance oracle.
    pub fn diversify_by<F>(
        &self,
        mut dist: F,
        query_id: u32,
        candidates: &[Neighbor],
        max_degree: usize,
    ) -> Vec<Neighbor>
    where
        F: FnMut(u32, u32) -> f32,
    {
        let mut sorted: Vec<Neighbor> =
            candidates.iter().copied().filter(|c| c.id != query_id).collect();
        sorted.sort_unstable();
        sorted.dedup_by_key(|c| c.id);

        if matches!(self, NdStrategy::NoNd) {
            sorted.truncate(max_degree);
            return sorted;
        }

        let mut kept: Vec<Neighbor> = Vec::with_capacity(max_degree.min(sorted.len()));
        for cand in sorted {
            if kept.len() >= max_degree {
                break;
            }
            let ok = kept.iter().all(|k| self.pair_ok(cand.dist, k.dist, dist(k.id, cand.id)));
            if ok {
                kept.push(cand);
            }
        }
        kept
    }

    /// Fraction of candidates removed by the *rule itself* (degree cap
    /// disabled), the statistic of Table 1.
    pub fn pruning_ratio(
        &self,
        space: Space<'_>,
        query_id: u32,
        candidates: &[Neighbor],
    ) -> f64 {
        let before = candidates.iter().filter(|c| c.id != query_id).count();
        if before == 0 {
            return 0.0;
        }
        let after = self.diversify(space, query_id, candidates, usize::MAX).len();
        1.0 - after as f64 / before as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistCounter;
    use crate::store::VectorStore;

    /// Paper Figure 2 geometry, reconstructed in 2-d:
    /// `Xq` at origin; `X1` closest; `X2` slightly farther, close to `X1`
    /// and at a small angle; `X3` at a wide angle but close to `X2`;
    /// `X4` far away in another direction.
    fn fig2_world() -> (VectorStore, Vec<Neighbor>) {
        let mut s = VectorStore::new(2);
        s.push(&[0.0, 0.0]); // 0 = Xq
        s.push(&[1.0, 0.0]); // 1 = X1
        s.push(&[0.74, 1.14]); // 2 = X2 (angle(X1,Xq,X2) ≈ 57°: RND & MOND
                               //     prune it, RRND at α=1.3 keeps it)
        s.push(&[0.6, 1.35]); // 3 = X3 (angle vs X1 ≈ 66°, near X2)
        s.push(&[-1.6, 1.2]); // 4 = X4 (far, own direction)
        let q = s.get(0).to_vec();
        let cands: Vec<Neighbor> =
            (1..5).map(|i| Neighbor::new(i, crate::distance::l2_sq(&q, s.get(i)))).collect();
        (s, cands)
    }

    #[test]
    fn rnd_matches_fig2() {
        let (s, cands) = fig2_world();
        let counter = DistCounter::new();
        let space = Space::new(&s, &counter);
        let kept = NdStrategy::Rnd.diversify(space, 0, &cands, 10);
        let ids: Vec<u32> = kept.iter().map(|k| k.id).collect();
        // X1 kept (closest); X2 pruned (closer to X1 than to Xq); X3 pruned
        // (closer to X2's region/X1... per RND: closer to X1?); X4 kept.
        assert!(ids.contains(&1));
        assert!(!ids.contains(&2), "X2 must be pruned by RND");
        assert!(ids.contains(&4), "X4 must survive RND");
    }

    #[test]
    fn rrnd_relaxes_rnd() {
        let (s, cands) = fig2_world();
        let counter = DistCounter::new();
        let space = Space::new(&s, &counter);
        let rnd = NdStrategy::Rnd.diversify(space, 0, &cands, 10);
        let rrnd = NdStrategy::Rrnd { alpha: 1.3 }.diversify(space, 0, &cands, 10);
        // Fig 2b: RRND keeps X2 which RND pruned.
        assert!(rrnd.iter().any(|k| k.id == 2));
        assert!(rrnd.len() >= rnd.len());
    }

    #[test]
    fn rrnd_alpha_one_equals_rnd() {
        let (s, cands) = fig2_world();
        let counter = DistCounter::new();
        let space = Space::new(&s, &counter);
        let rnd = NdStrategy::Rnd.diversify(space, 0, &cands, 10);
        let rrnd1 = NdStrategy::Rrnd { alpha: 1.0 }.diversify(space, 0, &cands, 10);
        assert_eq!(rnd, rrnd1);
    }

    #[test]
    fn mond_prunes_small_angles() {
        let (s, cands) = fig2_world();
        let counter = DistCounter::new();
        let space = Space::new(&s, &counter);
        let kept = NdStrategy::Mond { theta_deg: 60.0 }.diversify(space, 0, &cands, 10);
        let ids: Vec<u32> = kept.iter().map(|k| k.id).collect();
        // Fig 2c: X2 pruned (angle(X1,Xq,X2) < 60°), X3 kept
        // (angle(X1,Xq,X3) > 60°).
        assert!(ids.contains(&1));
        assert!(!ids.contains(&2), "X2 forms a small angle with X1");
        assert!(ids.contains(&3), "X3 forms a wide angle with X1");
    }

    #[test]
    fn nond_keeps_closest_truncated() {
        let (s, cands) = fig2_world();
        let counter = DistCounter::new();
        let space = Space::new(&s, &counter);
        let kept = NdStrategy::NoNd.diversify(space, 0, &cands, 2);
        assert_eq!(kept.len(), 2);
        assert!(kept[0].dist <= kept[1].dist);
        // NoND performs zero candidate-candidate distance evaluations.
        assert_eq!(counter.get(), 0);
    }

    #[test]
    fn max_degree_caps_output() {
        let (s, cands) = fig2_world();
        let counter = DistCounter::new();
        let space = Space::new(&s, &counter);
        for strat in [NdStrategy::Rnd, NdStrategy::rrnd_default(), NdStrategy::mond_default()] {
            let kept = strat.diversify(space, 0, &cands, 1);
            assert_eq!(kept.len(), 1);
            assert_eq!(kept[0].id, 1, "closest always survives");
        }
    }

    #[test]
    fn self_and_duplicates_removed() {
        let (s, mut cands) = fig2_world();
        cands.push(Neighbor::new(0, 0.0)); // the node itself
        cands.push(cands[0]); // duplicate
        let counter = DistCounter::new();
        let space = Space::new(&s, &counter);
        let kept = NdStrategy::Rnd.diversify(space, 0, &cands, 10);
        assert!(kept.iter().all(|k| k.id != 0));
        let mut ids: Vec<u32> = kept.iter().map(|k| k.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), kept.len());
    }

    #[test]
    fn pruning_ratio_ordering_matches_table1() {
        // On random clouds RND prunes most, then MOND, then RRND (Table 1).
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let mut s = VectorStore::new(8);
        for _ in 0..200 {
            let v: Vec<f32> = (0..8).map(|_| rng.random_range(-1.0..1.0f32)).collect();
            s.push(&v);
        }
        let counter = DistCounter::new();
        let space = Space::new(&s, &counter);
        let q = s.get(0).to_vec();
        let cands: Vec<Neighbor> =
            (1..60).map(|i| Neighbor::new(i, crate::distance::l2_sq(&q, s.get(i)))).collect();
        let r_rnd = NdStrategy::Rnd.pruning_ratio(space, 0, &cands);
        let r_mond = NdStrategy::mond_default().pruning_ratio(space, 0, &cands);
        let r_rrnd = NdStrategy::rrnd_default().pruning_ratio(space, 0, &cands);
        assert!(r_rnd >= r_mond, "RND {r_rnd} should prune >= MOND {r_mond}");
        assert!(r_mond >= r_rrnd, "MOND {r_mond} should prune >= RRND {r_rrnd}");
        assert!(r_rnd > 0.0);
    }

    #[test]
    fn mond_rejects_coincident_point() {
        // A candidate exactly at the query position has an undefined angle
        // and must not be kept after another neighbor exists.
        let mut s = VectorStore::new(2);
        s.push(&[0.0, 0.0]); // query
        s.push(&[1.0, 0.0]);
        s.push(&[0.0, 0.0]); // coincident with query
        let counter = DistCounter::new();
        let space = Space::new(&s, &counter);
        let cands = vec![Neighbor::new(1, 1.0), Neighbor::new(2, 0.0)];
        let kept = NdStrategy::mond_default().diversify(space, 0, &cands, 10);
        // Coincident point sorts first and is kept as the seed neighbor;
        // the real neighbor must then be rejected or kept consistently —
        // what matters is: no panic, no NaN propagation.
        assert!(!kept.is_empty());
        assert!(kept.iter().all(|k| k.dist.is_finite()));
    }
}
