//! Figure 11: beam width required to reach each accuracy level, per
//! method.
//!
//! Paper shape: ELPIS needs the smallest beam width for a given accuracy
//! (it searches small, coherent leaf graphs); a very high required beam
//! width means the search must wander a wide region.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig11_beam_width
//! ```

use gass_bench::{num_queries, results_dir, small_tiers};
use gass_core::{QueryParams, TerminationPolicy};
use gass_data::DatasetKind;
use gass_eval::{cost_to_reach, evaluate_params, Table};
use gass_graphs::{build_method, MethodKind};

fn main() {
    let k = 10;
    let targets = [0.90f64, 0.95, 0.99];
    let ls = [10usize, 20, 40, 80, 160, 320, 640];
    let tier = small_tiers()[1];
    let (base, queries) = DatasetKind::Deep.generate(tier.n, num_queries(), 41);
    let truth = gass_data::ground_truth(&base, &queries, k);
    println!(
        "Figure 11: beam width to reach target recall, Deep{} ({} vectors)\n",
        tier.label, tier.n
    );

    let mut table = Table::new(vec!["method", "L@0.90", "L@0.95", "L@0.99"]);
    for kind in [
        MethodKind::Elpis,
        MethodKind::Hnsw,
        MethodKind::Vamana,
        MethodKind::Nsg,
        MethodKind::Ssg,
        MethodKind::SptagBkt,
        MethodKind::Hcnng,
        MethodKind::Ngt,
    ] {
        let built = build_method(kind, base.clone(), 5);
        let mut cells = vec![kind.name()];
        for &t in &targets {
            let hit = cost_to_reach(built.index.as_ref(), &queries, &truth, k, t, &ls, 16);
            cells.push(hit.map_or(">640".into(), |p| p.beam_width.to_string()));
        }
        table.row(cells);
        eprintln!("done: {}", kind.name());
    }

    // Adaptive-termination rows: the same ladder on HNSW under each
    // policy. The qualifying L is the *cap* the search was given; the
    // parenthesised number is the distance calculations actually spent
    // per query — adaptive policies qualify from a wide cap while paying
    // well under its fixed-beam cost.
    let built = build_method(MethodKind::Hnsw, base.clone(), 5);
    for (label, term) in [
        ("hnsw fixed", TerminationPolicy::Fixed),
        ("hnsw sat:8", TerminationPolicy::Saturation { patience: 8 }),
        ("hnsw dr:0.2", TerminationPolicy::DistRatio { eps: 0.2 }),
    ] {
        let mut cells = vec![label.to_string()];
        for &t in &targets {
            let mut cell = format!(">{}", ls.last().unwrap());
            for &l in &ls {
                let params = QueryParams::new(k, l).with_seed_count(16).with_term(term);
                let p = evaluate_params(built.index.as_ref(), &queries, &truth, &params);
                if p.recall >= t {
                    cell = format!("{} ({})", l, p.dist_calcs / queries.len() as u64);
                    break;
                }
            }
            cells.push(cell);
        }
        table.row(cells);
        eprintln!("done: {label}");
    }
    table.emit(&results_dir(), "fig11_beam_width").expect("write results");
}
