//! Property-based tests (proptest) over the core invariants: ND
//! definitional properties, beam-search exactness at full width, EAPCA
//! lower-bound validity, and priority-queue equivalence.

use gass::prelude::*;
use gass_core::{BoundedMaxHeap, SortedBuffer, Space};
use proptest::prelude::*;

fn arb_points(
    n: std::ops::RangeInclusive<usize>,
    dim: usize,
) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-10.0f32..10.0, dim..=dim), n)
}

fn store_of(points: &[Vec<f32>]) -> VectorStore {
    let mut s = VectorStore::new(points[0].len());
    for p in points {
        s.push(p);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// RRND(α≥1) and MOND(θ≥60°) never keep fewer neighbors than their
    /// pairwise test allows relative to RND: every candidate *kept by
    /// RND* passes the weaker RRND pairwise test against RND's own kept
    /// set, and pruning ratios order RND ≥ RRND (paper Section 3.4).
    #[test]
    fn nd_pruning_ratios_are_ordered(points in arb_points(8..=40, 4)) {
        let store = store_of(&points);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let q = 0u32;
        let cands: Vec<Neighbor> = (1..store.len() as u32)
            .map(|i| Neighbor::new(i, gass_core::l2_sq(store.get(q), store.get(i))))
            .collect();
        let r_rnd = NdStrategy::Rnd.pruning_ratio(space, q, &cands);
        let r_rrnd = NdStrategy::rrnd_default().pruning_ratio(space, q, &cands);
        prop_assert!(r_rnd + 1e-9 >= r_rrnd, "RND {r_rnd} < RRND {r_rrnd}");
        // α = 1 must reproduce RND exactly.
        let kept_rnd = NdStrategy::Rnd.diversify(space, q, &cands, usize::MAX);
        let kept_a1 = NdStrategy::Rrnd { alpha: 1.0 }.diversify(space, q, &cands, usize::MAX);
        prop_assert_eq!(kept_rnd, kept_a1);
    }

    /// The kept set is always sorted by distance, self-free, duplicate-free
    /// and within the degree bound — for every strategy.
    #[test]
    fn nd_output_is_well_formed(
        points in arb_points(5..=30, 3),
        max_degree in 1usize..8,
    ) {
        let store = store_of(&points);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let cands: Vec<Neighbor> = (0..store.len() as u32)
            .map(|i| Neighbor::new(i, gass_core::l2_sq(store.get(0), store.get(i))))
            .collect();
        for nd in [NdStrategy::NoNd, NdStrategy::Rnd,
                   NdStrategy::rrnd_default(), NdStrategy::mond_default()] {
            let kept = nd.diversify(space, 0, &cands, max_degree);
            prop_assert!(kept.len() <= max_degree);
            prop_assert!(kept.iter().all(|n| n.id != 0));
            for w in kept.windows(2) {
                prop_assert!(w[0].dist <= w[1].dist);
                prop_assert!(w[0].id != w[1].id);
            }
        }
    }

    /// Beam search with beam width ≥ n on a connected graph is exact.
    #[test]
    fn full_width_beam_search_is_exact(
        points in arb_points(4..=24, 3),
        qx in -10.0f32..10.0, qy in -10.0f32..10.0, qz in -10.0f32..10.0,
    ) {
        let store = store_of(&points);
        let n = store.len();
        // Ring + chords: trivially connected.
        let mut g = gass_core::AdjacencyGraph::new(n);
        for i in 0..n as u32 {
            g.add_undirected(i, (i + 1) % n as u32);
        }
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let query = [qx, qy, qz];
        let mut scratch = gass_core::SearchScratch::new(n, n);
        let res = gass_core::beam_search(&g, space, &query, &[0], 3, n, &mut scratch);
        let exact = gass_core::serial_scan(space, &query, 3);
        let got: Vec<u32> = res.neighbors.iter().map(|x| x.id).collect();
        let want: Vec<u32> = exact.iter().map(|x| x.id).collect();
        // Allow tie permutations: compare distances instead of ids.
        for (a, b) in res.neighbors.iter().zip(&exact) {
            prop_assert!((a.dist - b.dist).abs() < 1e-4,
                "got {got:?}, want {want:?}");
        }
    }

    /// EAPCA pairwise lower bound never exceeds the true distance, for any
    /// segmentation.
    #[test]
    fn eapca_lower_bound_valid(
        a in prop::collection::vec(-5.0f32..5.0, 12),
        b in prop::collection::vec(-5.0f32..5.0, 12),
        segments in 1usize..=12,
    ) {
        let sa = gass::trees::summarize(&a, segments);
        let sb = gass::trees::summarize(&b, segments);
        let base = 12 / segments;
        let mut lens = vec![base; segments];
        *lens.last_mut().unwrap() += 12 - base * segments;
        let lb = gass::trees::eapca::lower_bound_pair(&sa, &sb, &lens);
        let exact = gass_core::l2_sq(&a, &b);
        prop_assert!(lb <= exact + 1e-2, "lb {lb} > exact {exact}");
    }

    /// The two priority-queue implementations retain identical top-k sets
    /// for any candidate stream.
    #[test]
    fn queues_agree(
        dists in prop::collection::vec(0.0f32..100.0, 1..80),
        cap in 1usize..16,
    ) {
        let mut buffer = SortedBuffer::new(cap);
        let mut heap = BoundedMaxHeap::new(cap);
        for (i, &d) in dists.iter().enumerate() {
            let nb = Neighbor::new(i as u32, d);
            buffer.insert(nb);
            heap.push(nb);
        }
        let mut from_buffer = buffer.top_k(cap);
        let mut from_heap = heap.into_sorted();
        from_buffer.sort();
        from_heap.sort();
        prop_assert_eq!(from_buffer, from_heap);
    }

    /// Recall of an exact scan is always 1 against its own ground truth.
    #[test]
    fn recall_of_truth_is_one(points in arb_points(6..=30, 4), k in 1usize..5) {
        let store = store_of(&points);
        let truth = gass::data::exact_knn(&store, store.get(0), k.min(store.len()));
        prop_assert_eq!(gass::eval::recall_at_k(&truth, &truth, k), 1.0);
    }

    /// The epoch-versioned visited set behaves exactly like a HashSet
    /// under any interleaving of insert/contains/clear.
    #[test]
    fn visited_set_matches_hashset_model(
        ops in prop::collection::vec((0u8..3, 0u32..64), 1..200),
    ) {
        let mut sut = gass_core::VisitedSet::new(64);
        let mut model = std::collections::HashSet::new();
        for (op, id) in ops {
            match op {
                0 => {
                    let fresh = sut.insert(id);
                    prop_assert_eq!(fresh, model.insert(id));
                }
                1 => prop_assert_eq!(sut.contains(id), model.contains(&id)),
                _ => {
                    sut.clear();
                    model.clear();
                }
            }
        }
    }

    /// Store/graph persistence round-trips bit-exactly for arbitrary
    /// contents.
    #[test]
    fn persistence_roundtrips(points in arb_points(2..=20, 5)) {
        let store = store_of(&points);
        let decoded =
            gass_core::persist::decode_store(gass_core::persist::encode_store(&store))
                .unwrap();
        prop_assert_eq!(decoded.as_flat(), store.as_flat());

        use gass_core::GraphView;
        let mut adj = gass_core::AdjacencyGraph::new(store.len());
        for i in 0..store.len() as u32 {
            adj.add_edge(i, (i + 1) % store.len() as u32);
        }
        let graph = gass_core::FlatGraph::from_adjacency(&adj, None);
        let back = gass_core::persist::decode_flat_graph(
            gass_core::persist::encode_flat_graph(&graph),
        )
        .unwrap();
        for v in 0..graph.num_nodes() as u32 {
            prop_assert_eq!(back.neighbors(v), graph.neighbors(v));
        }
    }

    /// EAPCA summaries are scale-consistent: summarizing a scaled vector
    /// scales means and stds by the same factor.
    #[test]
    fn eapca_summary_is_linear(
        v in prop::collection::vec(-5.0f32..5.0, 8),
        scale in 0.1f32..4.0,
    ) {
        let a = gass::trees::summarize(&v, 4);
        let scaled: Vec<f32> = v.iter().map(|x| x * scale).collect();
        let b = gass::trees::summarize(&scaled, 4);
        for (x, y) in a.features.iter().zip(&b.features) {
            prop_assert!((x * scale - y).abs() < 1e-3, "{x} * {scale} != {y}");
        }
    }
}
