//! # GASS — Graph-bAsed Similarity Search
//!
//! A unified Rust library of graph-based approximate nearest-neighbor
//! search, reproducing *"Graph-Based Vector Search: An Experimental
//! Evaluation of the State-of-the-Art"* (SIGMOD 2025): thirteen method
//! implementations (HNSW, NSG, SSG, Vamana, DPG, EFANNA, HCNNG, KGraph,
//! NGT, SPTAG-KDT/BKT, ELPIS, LSHAPG, plus NSW), the five design
//! paradigms they compose (Seed Selection, Neighborhood Propagation,
//! Incremental Insertion, Neighborhood Diversification,
//! Divide-and-Conquer), and the full experimental harness of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use gass::prelude::*;
//!
//! // 1k 96-d vectors from the Deep1B-like generator.
//! let base = gass::data::synth::deep_like(1_000, 42);
//! let queries = gass::data::synth::deep_like(5, 43);
//!
//! // Build an HNSW index and run 10-NN queries.
//! let index = HnswIndex::build(base.clone(), HnswParams::small());
//! let counter = DistCounter::new();
//! let res = index.search(queries.get(0), &QueryParams::new(10, 64), &counter);
//! assert_eq!(res.neighbors.len(), 10);
//!
//! // Exact ground truth and recall.
//! let truth = gass::data::ground_truth(&base, &queries, 10);
//! let r = gass::eval::recall_at_k(&truth[0], &res.neighbors, 10);
//! assert!(r > 0.5);
//! ```
//!
//! ## Crate map
//!
//! * [`core`] — vector store, distances + counting, graphs, beam search,
//!   ND strategies, seed-selection traits;
//! * [`trees`] — K-D/VP/TP/BKT/Hercules trees, k-means, MSTs;
//! * [`hash`] — multi-table Euclidean LSH;
//! * [`graphs`] — the method implementations and the paradigm-composable
//!   baseline;
//! * [`data`] — synthetic dataset analogs, query workloads, ground truth;
//! * [`eval`] — recall sweeps, LID/LRC, memory accounting, reporting.

#![warn(missing_docs)]

pub use gass_core as core;
pub use gass_data as data;
pub use gass_eval as eval;
pub use gass_graphs as graphs;
pub use gass_hash as hash;
pub use gass_trees as trees;

/// Commonly used items for application code.
pub mod prelude {
    pub use gass_core::{
        AnnIndex, DistCounter, NdStrategy, Neighbor, QueryParams, SeedProvider, VectorStore,
    };
    pub use gass_data::DatasetKind;
    pub use gass_graphs::{
        build_method, ElpisIndex, ElpisParams, HnswIndex, HnswParams, IiGraph, IiParams,
        MethodKind, NsgIndex, NsgParams, VamanaIndex, VamanaParams,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let base = gass_data::synth::imagenet_like(300, 1);
        let built = build_method(MethodKind::Hnsw, base.clone(), 5);
        let counter = DistCounter::new();
        let res = built.index.search(base.get(7), &QueryParams::new(3, 32), &counter);
        assert_eq!(res.neighbors[0].id, 7);
    }
}
