//! The long-lived TCP query service.
//!
//! Thread anatomy (all plain `std`; the crate adds no dependencies):
//!
//! * **acceptor** — one thread on a non-blocking listener, spawning a
//!   handler per connection and exiting on shutdown;
//! * **connection handlers** — a reader/writer thread pair per client.
//!   The reader parses frames ([`crate::protocol`]), assigns each a
//!   per-connection sequence number, validates, and enqueues query jobs
//!   into the shared [`BatchQueue`] *without waiting for their replies*,
//!   so one connection can have many requests in flight (pipelining).
//!   Replies land in the connection's [`Outbox`] keyed by sequence
//!   number; the writer thread emits them in request order — clients
//!   match responses to requests positionally — and flushes once per
//!   wakeup, so a completed micro-batch costs one write syscall per
//!   connection, not one per request;
//! * **worker executors** — `workers` threads (one per core by default),
//!   each pinned to its own scratch-pool stripe
//!   ([`gass_core::pin_scratch_home`]), draining micro-batches and
//!   answering them through the coalesced engine
//!   ([`crate::engine::execute_coalesced`]).
//!
//! Admission control is the queue's bounded depth: when the backlog hits
//! `queue_depth`, new queries are fast-rejected with an `overloaded`
//! response instead of joining an ever-growing line — open-loop overload
//! then costs rejected requests, not unbounded latency for admitted ones.
//! Each request may carry a deadline; workers answer `DeadlineExceeded`
//! without searching when a job's deadline passed while it queued.

use crate::engine::execute_coalesced;
use crate::protocol::{
    decode_request, encode_response, queue_frame, QueryRequest, Request, Response, Status,
    MAX_FRAME_BYTES,
};
use crate::queue::{BatchQueue, PushError};
use gass_core::distance::DistCounter;
use gass_core::index::{AnnIndex, QueryParams};
use gass_core::stats::Histogram;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{self, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server configuration (CLI flags map onto this 1:1).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind host.
    pub host: String,
    /// Bind port (0 = ephemeral; read the bound port off the handle).
    pub port: u16,
    /// Worker executor threads (0 = all cores).
    pub workers: usize,
    /// Micro-batch close size: a batch executes once it holds this many
    /// jobs. `1` turns cross-request batching off *everywhere*: jobs are
    /// dispatched one per wakeup and each reply is written and flushed
    /// individually (request-at-a-time serving); with `max_batch > 1`
    /// the reply path also coalesces — the writer drains every ready
    /// frame per wakeup with a single flush…
    pub max_batch: usize,
    /// …or once this many microseconds passed since its first job,
    /// whichever comes first. Zero = close as soon as the queue empties.
    pub max_wait_us: u64,
    /// Admission bound: jobs queued beyond this are fast-rejected.
    pub queue_depth: usize,
    /// Server-side termination policy applied to every admitted query
    /// (the wire format carries no policy — the operator chooses it).
    /// `None` defers to [`gass_core::term_forced`] via the
    /// [`QueryParams::new`] default.
    pub term: Option<gass_core::Termination>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            host: "127.0.0.1".to_string(),
            port: 0,
            workers: 0,
            max_batch: 16,
            max_wait_us: 200,
            queue_depth: 1024,
            term: None,
        }
    }
}

/// Per-connection reply mailbox. Every incoming frame reserves the next
/// sequence number ([`Outbox::issue`]); whoever answers it — the reader
/// itself for control frames and rejections, a worker for query results —
/// posts the encoded response frame under that sequence. The connection's
/// writer thread emits posted frames strictly in sequence order, which is
/// what lets pipelined clients match responses to requests positionally
/// even when micro-batches complete out of order across stripes.
struct Outbox {
    inner: Mutex<OutboxInner>,
    bell: Condvar,
}

struct OutboxInner {
    /// Posted but not yet written response frames, keyed by sequence.
    ready: BinaryHeap<Reverse<(u64, Vec<u8>)>>,
    /// Next sequence the writer will emit.
    next_write: u64,
    /// Sequences issued so far; every one is guaranteed a post (workers
    /// drain the queue fully before exiting).
    issued: u64,
    /// The reader stopped issuing (EOF, shutdown, or a read error).
    closed: bool,
}

impl Outbox {
    fn new() -> Self {
        Self {
            inner: Mutex::new(OutboxInner {
                ready: BinaryHeap::new(),
                next_write: 0,
                issued: 0,
                closed: false,
            }),
            bell: Condvar::new(),
        }
    }

    /// Reserves the next sequence number for an incoming frame.
    fn issue(&self) -> u64 {
        let mut g = self.inner.lock().unwrap();
        let seq = g.issued;
        g.issued += 1;
        seq
    }

    /// Posts the response to `seq` without waking the writer; callers
    /// posting a whole batch [`Self::ring`] once at the end.
    fn post_quiet(&self, seq: u64, frame: Vec<u8>) {
        self.inner.lock().unwrap().ready.push(Reverse((seq, frame)));
    }

    /// Posts the response to `seq` and wakes the writer.
    fn post(&self, seq: u64, frame: Vec<u8>) {
        self.post_quiet(seq, frame);
        self.ring();
    }

    /// Wakes the writer thread.
    fn ring(&self) {
        self.bell.notify_one();
    }

    /// Marks the reader done; the writer exits once everything issued has
    /// been posted and written.
    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.bell.notify_one();
    }
}

/// A job's way home: the connection outbox plus the request's sequence.
struct ReplyTo {
    outbox: Arc<Outbox>,
    seq: u64,
}

impl ReplyTo {
    fn post(&self, resp: &Response) {
        self.outbox.post(self.seq, encode_response(resp));
    }

    fn post_quiet(&self, resp: &Response) {
        self.outbox.post_quiet(self.seq, encode_response(resp));
    }
}

/// One admitted query job.
struct Job {
    query: Vec<f32>,
    params: QueryParams,
    received: Instant,
    deadline_us: u32,
    reply: ReplyTo,
}

impl Job {
    fn expired(&self, now: Instant) -> bool {
        self.deadline_us > 0
            && now.duration_since(self.received)
                > Duration::from_micros(self.deadline_us as u64)
    }
}

/// Monotonic serving counters plus the merged latency histogram.
struct StatsInner {
    started: Instant,
    admitted: AtomicU64,
    completed: AtomicU64,
    overloaded: AtomicU64,
    expired: AtomicU64,
    bad_requests: AtomicU64,
    batches: AtomicU64,
    /// `batch_size_counts[s]` = batches that executed with `s` live jobs
    /// (index 0 unused; sized `max_batch + 1`).
    batch_size_counts: Vec<AtomicU64>,
    latency_us: Mutex<Histogram>,
    /// Distance computations per completed query — the observable for
    /// adaptive-termination savings (and the deadline clamp's input).
    dists_per_query: Mutex<Histogram>,
    /// Accumulated wall time spent inside `execute_coalesced` and the
    /// evaluations it performed: their ratio is the live ns-per-distance
    /// estimate the deadline→budget conversion uses.
    search_ns: AtomicU64,
    search_dists: AtomicU64,
    dist_counter: DistCounter,
}

/// A point-in-time copy of the serving statistics.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Queries admitted into the queue.
    pub admitted: u64,
    /// Queries answered with neighbors.
    pub completed: u64,
    /// Queries fast-rejected by admission control.
    pub overloaded: u64,
    /// Queries expired past their deadline while queued.
    pub expired: u64,
    /// Malformed queries (dimension mismatch, zero k).
    pub bad_requests: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Mean live jobs per executed batch.
    pub mean_batch: f64,
    /// `(batch_size, count)` for every observed batch size.
    pub batch_size_counts: Vec<(usize, u64)>,
    /// Completed-query latencies (receipt → reply), microseconds.
    pub lat_count: u64,
    /// Mean latency (µs).
    pub lat_mean_us: f64,
    /// Median latency (µs).
    pub lat_p50_us: u64,
    /// 95th percentile latency (µs).
    pub lat_p95_us: u64,
    /// 99th percentile latency (µs).
    pub lat_p99_us: u64,
    /// Worst latency (µs).
    pub lat_max_us: u64,
    /// Completed queries per second of uptime.
    pub qps: f64,
    /// Total distance computations across all queries.
    pub dist_calcs: u64,
    /// Queries in the distance-computations-per-query histogram.
    pub dists_count: u64,
    /// Mean distance computations per completed query.
    pub dists_mean: f64,
    /// Median distance computations per query.
    pub dists_p50: u64,
    /// 95th percentile distance computations per query.
    pub dists_p95: u64,
    /// 99th percentile distance computations per query.
    pub dists_p99: u64,
    /// Worst distance computations for a single query.
    pub dists_max: u64,
    /// Jobs queued right now.
    pub queue_depth: usize,
}

impl StatsSnapshot {
    /// Renders the snapshot as the stats-endpoint JSON document.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> =
            self.batch_size_counts.iter().map(|(s, c)| format!("[{s},{c}]")).collect();
        format!(
            concat!(
                "{{\"uptime_s\":{:.3},\"qps\":{:.1},",
                "\"admitted\":{},\"completed\":{},\"overloaded\":{},",
                "\"deadline_expired\":{},\"bad_requests\":{},",
                "\"batches\":{},\"mean_batch\":{:.2},\"batch_size_counts\":[{}],",
                "\"latency_us\":{{\"count\":{},\"mean\":{:.1},\"p50\":{},",
                "\"p95\":{},\"p99\":{},\"max\":{}}},",
                "\"dists_per_query\":{{\"count\":{},\"mean\":{:.1},\"p50\":{},",
                "\"p95\":{},\"p99\":{},\"max\":{}}},",
                "\"dist_calcs\":{},\"queue_depth\":{}}}"
            ),
            self.uptime_s,
            self.qps,
            self.admitted,
            self.completed,
            self.overloaded,
            self.expired,
            self.bad_requests,
            self.batches,
            self.mean_batch,
            buckets.join(","),
            self.lat_count,
            self.lat_mean_us,
            self.lat_p50_us,
            self.lat_p95_us,
            self.lat_p99_us,
            self.lat_max_us,
            self.dists_count,
            self.dists_mean,
            self.dists_p50,
            self.dists_p95,
            self.dists_p99,
            self.dists_max,
            self.dist_calcs,
            self.queue_depth,
        )
    }
}

impl StatsInner {
    fn new(max_batch: usize) -> Self {
        Self {
            started: Instant::now(),
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_size_counts: (0..=max_batch.max(1)).map(|_| AtomicU64::new(0)).collect(),
            latency_us: Mutex::new(Histogram::new()),
            dists_per_query: Mutex::new(Histogram::new()),
            search_ns: AtomicU64::new(0),
            search_dists: AtomicU64::new(0),
            dist_counter: DistCounter::new(),
        }
    }

    fn snapshot(&self, queue_depth: usize) -> StatsSnapshot {
        let uptime_s = self.started.elapsed().as_secs_f64().max(1e-9);
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batch_size_counts: Vec<(usize, u64)> = self
            .batch_size_counts
            .iter()
            .enumerate()
            .filter_map(|(s, c)| {
                let c = c.load(Ordering::Relaxed);
                (c > 0).then_some((s, c))
            })
            .collect();
        let weighted: u64 = batch_size_counts.iter().map(|(s, c)| *s as u64 * c).sum();
        let lat = self.latency_us.lock().unwrap();
        let dists = self.dists_per_query.lock().unwrap();
        StatsSnapshot {
            uptime_s,
            admitted: self.admitted.load(Ordering::Relaxed),
            completed,
            overloaded: self.overloaded.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            batches,
            mean_batch: weighted as f64 / batches.max(1) as f64,
            batch_size_counts,
            lat_count: lat.count(),
            lat_mean_us: lat.mean(),
            lat_p50_us: lat.quantile(0.50),
            lat_p95_us: lat.quantile(0.95),
            lat_p99_us: lat.quantile(0.99),
            lat_max_us: lat.max(),
            qps: completed as f64 / uptime_s,
            dist_calcs: self.dist_counter.get(),
            dists_count: dists.count(),
            dists_mean: dists.mean(),
            dists_p50: dists.quantile(0.50),
            dists_p95: dists.quantile(0.95),
            dists_p99: dists.quantile(0.99),
            dists_max: dists.max(),
            queue_depth,
        }
    }
}

/// Handle to a running server: bound address, stats access, shutdown.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<BatchQueue<Job>>,
    stats: Arc<StatsInner>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves an ephemeral `port: 0`).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Point-in-time serving statistics (also served over the wire as
    /// JSON via a `Stats` request).
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot(self.queue.depth())
    }

    /// Initiates shutdown: stop accepting, refuse new queries, let
    /// workers drain the backlog. Idempotent; does not block.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.queue.close();
    }

    /// `true` once [`Self::shutdown`] was requested (locally or over the
    /// wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Blocks until the acceptor and all workers exited. Call
    /// [`Self::shutdown`] first (or send a `Shutdown` frame).
    pub fn join(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
    }
}

/// Starts serving `index` per `cfg`. Returns once the listener is bound;
/// serving continues on background threads until shutdown.
pub fn serve(index: Arc<dyn AnnIndex>, cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind((cfg.host.as_str(), cfg.port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = gass_core::effective_threads(cfg.workers);
    // One queue stripe per worker mirrors the scratch-pool striping; the
    // producer side round-robins across stripes.
    let queue = Arc::new(BatchQueue::new(cfg.queue_depth, workers));
    let stats = Arc::new(StatsInner::new(cfg.max_batch));
    let shutdown = Arc::new(AtomicBool::new(false));

    let mut worker_handles = Vec::with_capacity(workers);
    for w in 0..workers {
        let queue = Arc::clone(&queue);
        let stats = Arc::clone(&stats);
        let index = Arc::clone(&index);
        let max_batch = cfg.max_batch;
        let max_wait = Duration::from_micros(cfg.max_wait_us);
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("gass-serve-worker-{w}"))
                .spawn(move || worker_loop(w, &index, &queue, &stats, max_batch, max_wait))?,
        );
    }

    let acceptor = {
        let queue = Arc::clone(&queue);
        let stats = Arc::clone(&stats);
        let shutdown = Arc::clone(&shutdown);
        let index = Arc::clone(&index);
        // max_batch = 1 is the per-request configuration: no
        // cross-request coalescing on the reply path either.
        let coalesce = cfg.max_batch > 1;
        let term = cfg.term;
        std::thread::Builder::new().name("gass-serve-acceptor".to_string()).spawn(
            move || {
                let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
                while !shutdown.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let queue = Arc::clone(&queue);
                            let stats = Arc::clone(&stats);
                            let shutdown = Arc::clone(&shutdown);
                            let index = Arc::clone(&index);
                            handlers.retain(|h| !h.is_finished());
                            handlers.push(std::thread::spawn(move || {
                                let _ = handle_connection(
                                    stream, &index, &queue, &stats, &shutdown, coalesce, term,
                                );
                            }));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
                for h in handlers {
                    let _ = h.join();
                }
            },
        )?
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        queue,
        stats,
        acceptor: Some(acceptor),
        workers: worker_handles,
    })
}

/// Floor for deadline-derived compute budgets: enough evaluations to
/// seed and take a few hops, so even a nearly expired query returns
/// *something* ranked rather than noise.
const MIN_DEADLINE_DISTS: usize = 64;

/// Worker executor: drain → expire → budget → coalesce → reply → account.
fn worker_loop(
    w: usize,
    index: &Arc<dyn AnnIndex>,
    queue: &BatchQueue<Job>,
    stats: &StatsInner,
    max_batch: usize,
    max_wait: Duration,
) {
    // Distinct stripes guaranteed: the index's ScratchPool is striped at
    // least 8 ways and `hash` collisions are replaced by the worker id.
    gass_core::pin_scratch_home(w);
    // Shard-affine execution on multi-node hosts: executor `w` runs on
    // node `w % nodes`, matching the sharded index's round-robin home
    // placement, so its probes (and any fan-out it triggers) walk local
    // memory. A no-op on single-node hosts and off Linux.
    gass_core::pin_to_node(gass_core::numa::node_of_worker(w));
    let mut batch: Vec<Job> = Vec::with_capacity(max_batch);
    let mut live: Vec<Job> = Vec::with_capacity(max_batch);
    let mut queries: Vec<(Vec<f32>, QueryParams)> = Vec::with_capacity(max_batch);
    let mut ringers: Vec<Arc<Outbox>> = Vec::with_capacity(8);
    while queue.pop_batch(w, max_batch, max_wait, &mut batch) {
        let now = Instant::now();
        live.clear();
        for job in batch.drain(..) {
            if job.expired(now) {
                stats.expired.fetch_add(1, Ordering::Relaxed);
                job.reply.post(&Response::Rejected {
                    status: Status::DeadlineExceeded,
                    detail: "deadline passed while queued".to_string(),
                });
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            continue;
        }
        // Deadline → budget: a job admitted with most of its deadline
        // already spent queueing gets a `max_dists` cap sized from the
        // measured ns-per-distance, so it returns its best partial answer
        // inside the deadline instead of blowing through it (the queue
        // already rejected the fully expired; this rescues the almost
        // expired). Healthy jobs — budget comfortably above the mean
        // per-query work — are left untouched so batch grouping and
        // results stay exactly as configured.
        let hist_ns = stats.search_ns.load(Ordering::Relaxed);
        let hist_dists = stats.search_dists.load(Ordering::Relaxed);
        if hist_ns > 0 && hist_dists > 0 {
            let ns_per_dist = (hist_ns as f64 / hist_dists as f64).max(1e-3);
            let mean_dists = hist_dists / stats.completed.load(Ordering::Relaxed).max(1);
            for job in &mut live {
                if job.deadline_us == 0 {
                    continue;
                }
                let spent_ns = now.duration_since(job.received).as_nanos() as u64;
                let left_ns = (job.deadline_us as u64 * 1_000).saturating_sub(spent_ns);
                let budget = ((left_ns as f64 / ns_per_dist) as usize).max(MIN_DEADLINE_DISTS);
                if (budget as u64) < mean_dists.saturating_mul(2) {
                    job.params.max_dists = match job.params.max_dists {
                        0 => budget,
                        d => d.min(budget),
                    };
                }
            }
        }
        queries.clear();
        for job in &mut live {
            queries.push((std::mem::take(&mut job.query), job.params));
        }
        let exec_start = Instant::now();
        let results = execute_coalesced(index.as_ref(), &queries, &stats.dist_counter);
        stats.batches.fetch_add(1, Ordering::Relaxed);
        let size_slot = live.len().min(stats.batch_size_counts.len() - 1);
        stats.batch_size_counts[size_slot].fetch_add(1, Ordering::Relaxed);
        let done = Instant::now();
        let batch_dists: u64 = results.iter().map(|r| r.stats.evaluated as u64).sum();
        stats
            .search_ns
            .fetch_add(done.duration_since(exec_start).as_nanos() as u64, Ordering::Relaxed);
        stats.search_dists.fetch_add(batch_dists, Ordering::Relaxed);
        {
            // One lock per batch, not per reply.
            let mut lat = stats.latency_us.lock().unwrap();
            for job in &live {
                lat.record(done.duration_since(job.received).as_micros() as u64);
            }
        }
        {
            let mut dists = stats.dists_per_query.lock().unwrap();
            for res in &results {
                dists.record(res.stats.evaluated as u64);
            }
        }
        stats.completed.fetch_add(live.len() as u64, Ordering::Relaxed);
        // Post the whole batch quietly, then ring each connection's writer
        // once: the writer drains every ready reply in one wakeup and one
        // flush, which is where batching amortizes the reply-path
        // syscalls (one per connection per batch instead of one per job).
        ringers.clear();
        for (job, res) in live.drain(..).zip(results) {
            let ns = res.neighbors.iter().map(|n| (n.id, n.dist)).collect();
            job.reply.post_quiet(&Response::Neighbors(ns));
            if !ringers.iter().any(|o| Arc::ptr_eq(o, &job.reply.outbox)) {
                ringers.push(Arc::clone(&job.reply.outbox));
            }
        }
        for outbox in &ringers {
            outbox.ring();
        }
    }
}

/// The connection reader: assigns sequence numbers, answers control
/// frames, enqueues queries without waiting on them, and tears the
/// reader/writer pair down on EOF or shutdown.
#[allow(clippy::too_many_arguments)]
fn handle_connection(
    stream: TcpStream,
    index: &Arc<dyn AnnIndex>,
    queue: &BatchQueue<Job>,
    stats: &StatsInner,
    shutdown: &AtomicBool,
    coalesce: bool,
    term: Option<gass_core::Termination>,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    // A peer that stops draining its socket for this long is treated as
    // gone; the writer goes dead instead of wedging shutdown forever.
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = stream.try_clone()?;
    let outbox = Arc::new(Outbox::new());
    let writer = {
        let outbox = Arc::clone(&outbox);
        std::thread::Builder::new()
            .name("gass-serve-writer".to_string())
            .spawn(move || writer_loop(stream, &outbox, coalesce))?
    };
    let mut result = Ok(());
    loop {
        let payload = match read_frame_interruptible(&mut reader, shutdown) {
            Ok(Some(payload)) => payload,
            Ok(None) => break,
            Err(e) => {
                result = Err(e);
                break;
            }
        };
        let seq = outbox.issue();
        match decode_request(&payload) {
            Err(e) => {
                stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                outbox.post(
                    seq,
                    encode_response(&Response::Rejected {
                        status: Status::BadRequest,
                        detail: e.to_string(),
                    }),
                );
            }
            Ok(Request::Ping) => outbox.post(seq, encode_response(&Response::Pong)),
            Ok(Request::Stats) => outbox.post(
                seq,
                encode_response(&Response::Stats(stats.snapshot(queue.depth()).to_json())),
            ),
            Ok(Request::Shutdown) => {
                shutdown.store(true, Ordering::Release);
                queue.close();
                outbox.post(seq, encode_response(&Response::ShutdownAck));
                break;
            }
            Ok(Request::Query(q)) => {
                let reply = ReplyTo { outbox: Arc::clone(&outbox), seq };
                enqueue_query(q, reply, index, queue, stats, term);
            }
        }
    }
    // In-flight jobs still reach the outbox (workers drain the queue
    // before exiting); the writer finishes writing them, then exits.
    outbox.close();
    let _ = writer.join();
    result
}

/// Validates and enqueues one query; rejections are posted immediately.
fn enqueue_query(
    q: QueryRequest,
    reply: ReplyTo,
    index: &Arc<dyn AnnIndex>,
    queue: &BatchQueue<Job>,
    stats: &StatsInner,
    term: Option<gass_core::Termination>,
) {
    if q.query.len() != index.dim() {
        stats.bad_requests.fetch_add(1, Ordering::Relaxed);
        reply.post(&Response::Rejected {
            status: Status::BadRequest,
            detail: format!("query dim {} != index dim {}", q.query.len(), index.dim()),
        });
        return;
    }
    if q.k == 0 {
        stats.bad_requests.fetch_add(1, Ordering::Relaxed);
        reply.post(&Response::Rejected {
            status: Status::BadRequest,
            detail: "k must be at least 1".to_string(),
        });
        return;
    }
    let mut params = QueryParams::new(q.k, q.beam_width.max(q.k))
        .with_seed_count(q.seed_count.max(1))
        .with_rerank_factor(q.rerank_factor.max(1));
    if let Some(t) = term {
        params = params.with_term(t.policy).with_max_dists(t.max_dists);
    }
    let job = Job {
        query: q.query,
        params,
        received: Instant::now(),
        deadline_us: q.deadline_us,
        reply,
    };
    match queue.push(job) {
        Err((PushError::Overloaded, job)) => {
            stats.overloaded.fetch_add(1, Ordering::Relaxed);
            job.reply.post(&Response::Rejected {
                status: Status::Overloaded,
                detail: format!("queue full ({} jobs)", queue.capacity()),
            });
        }
        Err((PushError::Closed, job)) => {
            job.reply.post(&Response::Rejected {
                status: Status::ShuttingDown,
                detail: "server is draining".to_string(),
            });
        }
        Ok(()) => {
            stats.admitted.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The connection writer: emits posted response frames in sequence order.
/// With `coalesce` (micro-batching on) it drains everything ready per
/// wakeup and flushes once per drain — the reply-path side of
/// cross-request batching. Without it (`max_batch = 1`) every reply is
/// its own write and flush, the way a request-at-a-time server answers.
/// On a write error (or timeout — the peer stopped draining) it goes
/// dead: frames are still consumed so the sequence bookkeeping completes,
/// but nothing more is written.
fn writer_loop(stream: TcpStream, outbox: &Outbox, coalesce: bool) {
    let mut w = BufWriter::new(stream);
    let mut dead = false;
    let mut frames: Vec<Vec<u8>> = Vec::new();
    loop {
        {
            let mut g = outbox.inner.lock().unwrap();
            loop {
                while g.ready.peek().is_some_and(|Reverse((seq, _))| *seq == g.next_write) {
                    let Reverse((_, frame)) = g.ready.pop().unwrap();
                    g.next_write += 1;
                    frames.push(frame);
                }
                if !frames.is_empty() {
                    break;
                }
                if g.closed && g.next_write == g.issued {
                    return;
                }
                g = outbox.bell.wait(g).unwrap();
            }
        }
        if !dead {
            for frame in &frames {
                let res = if coalesce {
                    queue_frame(&mut w, frame)
                } else {
                    queue_frame(&mut w, frame).and_then(|()| w.flush())
                };
                if res.is_err() {
                    dead = true;
                    break;
                }
            }
            if coalesce && !dead && w.flush().is_err() {
                dead = true;
            }
        }
        frames.clear();
    }
}

/// [`crate::protocol::read_frame`] against a read-timeout socket: partial
/// reads are accumulated (a timeout mid-frame never desyncs the framing),
/// and the shutdown flag is polled between reads so handler threads exit
/// promptly on drain.
fn read_frame_interruptible(
    r: &mut impl Read,
    stop: &AtomicBool,
) -> io::Result<Option<Vec<u8>>> {
    let mut buf: Vec<u8> = Vec::with_capacity(4);
    let mut need = 4usize;
    let mut have_len = false;
    let mut tmp = [0u8; 4096];
    loop {
        if buf.len() == need {
            if have_len {
                return Ok(Some(buf.split_off(4)));
            }
            let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
            if len > MAX_FRAME_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES} cap"),
                ));
            }
            need = 4 + len;
            have_len = true;
            continue;
        }
        let want = (need - buf.len()).min(tmp.len());
        match r.read(&mut tmp[..want]) {
            Ok(0) => return Ok(None),
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}
