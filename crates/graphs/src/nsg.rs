//! **NSG** — Navigating Spreading-out Graph: starts from an EFANNA
//! approximate k-NN graph; for every node, runs a beam search from the
//! dataset medoid over the base graph, collects the *visited* nodes as
//! candidates, prunes them with RND, and finally repairs connectivity via
//! a tree rooted at the medoid. Queries start at the medoid (with random
//! warm-up seeds — MD+KS).

use crate::common::{add_reverse_edges, repair_connectivity, BuildReport};
use crate::efanna::{EfannaIndex, EfannaParams};
use gass_core::distance::{DistCounter, Space};
use gass_core::graph::{AdjacencyGraph, FlatGraph, GraphView};
use gass_core::index::{AnnIndex, IndexStats, QueryParams, ScratchPool};
use gass_core::nd::NdStrategy;
use gass_core::neighbor::Neighbor;
use gass_core::reorder::{ReorderStrategy, ServingState};
use gass_core::search::{
    beam_search_frozen, beam_search_with_sink, SearchResult, SearchScratch,
};
use gass_core::seed::{RandomSeeds, SeedProvider};
use gass_core::store::VectorStore;

/// NSG construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct NsgParams {
    /// Final maximum out-degree `R`.
    pub max_degree: usize,
    /// Construction beam width for the per-node searches.
    pub build_l: usize,
    /// Parameters of the EFANNA base graph.
    pub base: EfannaParams,
    /// RNG seed.
    pub seed: u64,
    /// Construction worker threads (0 = all available cores). Every
    /// candidate search reads only the immutable base graph, so the
    /// parallel phase feeds a serial in-order apply and the built graph is
    /// bit-identical at any thread count. (The EFANNA base has its own
    /// `threads` knob.)
    pub threads: usize,
}

impl NsgParams {
    /// Small-scale defaults.
    pub fn small() -> Self {
        Self { max_degree: 24, build_l: 64, base: EfannaParams::small(), seed: 42, threads: 0 }
    }
}

/// A built NSG index.
pub struct NsgIndex {
    store: VectorStore,
    graph: FlatGraph,
    serving: ServingState,
    seeds: RandomSeeds,
    medoid: u32,
    scratch: ScratchPool,
    build: BuildReport,
    base_build: BuildReport,
}

impl NsgIndex {
    /// Builds NSG from scratch (including its EFANNA base; the paper's
    /// indexing-time figures charge NSG for both phases).
    pub fn build(store: VectorStore, params: NsgParams) -> Self {
        let efanna = EfannaIndex::build(store, params.base);
        let (store, base_graph, _forest, base_build) = efanna.into_parts();
        Self::from_base(store, &base_graph, base_build, params)
    }

    /// Builds NSG on a pre-built base graph.
    pub fn from_base(
        store: VectorStore,
        base_graph: &FlatGraph,
        base_build: BuildReport,
        params: NsgParams,
    ) -> Self {
        let counter = DistCounter::new();
        let start = std::time::Instant::now();
        let n = store.len();
        let (graph, medoid) = {
            let space = Space::new(&store, &counter);
            let medoid = store.centroid_medoid();
            let threads = gass_core::effective_threads(params.threads);
            // Phase A: candidate generation reads only the immutable base
            // graph, never the NSG under construction — so the per-node
            // searches parallelize freely.
            let prepared: Vec<Vec<Neighbor>> = gass_core::par_map_with(
                threads,
                n,
                || (SearchScratch::new(n, params.build_l), Vec::new()),
                |state, u| {
                    let (scratch, sink) = state;
                    let u = u as u32;
                    sink.clear();
                    beam_search_with_sink(
                        base_graph,
                        space,
                        store.get(u),
                        &[medoid],
                        params.build_l,
                        params.build_l,
                        scratch,
                        Some(sink),
                    );
                    // Candidate pool: everything visited plus the node's
                    // base neighbors.
                    for &v in base_graph.neighbors(u) {
                        if !sink.iter().any(|s| s.id == v) {
                            sink.push(Neighbor::new(v, space.dist(u, v)));
                        }
                    }
                    NdStrategy::Rnd.diversify(space, u, sink, params.max_degree)
                },
            );
            // Phase B: serial apply in node order — identical to the
            // sequential build.
            let mut g = AdjacencyGraph::with_degree_hint(n, params.max_degree + 1);
            for (u, kept) in prepared.iter().enumerate() {
                let u = u as u32;
                g.set_neighbors(u, kept.iter().map(|k| k.id).collect());
                add_reverse_edges(space, &mut g, u, kept, params.max_degree, NdStrategy::Rnd);
            }
            repair_connectivity(space, &mut g, medoid);
            (g, medoid)
        };
        let build = BuildReport {
            seconds: start.elapsed().as_secs_f64() + base_build.seconds,
            dist_calcs: counter.get() + base_build.dist_calcs,
        };
        let flat = FlatGraph::from_adjacency(&graph, None);
        let seeds = RandomSeeds::with_anchor(n, medoid, params.seed ^ 0x5eed);
        Self {
            store,
            graph: flat,
            seeds,
            medoid,
            serving: ServingState::new(),
            scratch: ScratchPool::new(),
            build,
            base_build,
        }
    }

    /// Total construction cost (EFANNA base + NSG refinement).
    pub fn build_report(&self) -> BuildReport {
        self.build
    }

    /// Cost of the EFANNA base alone.
    pub fn base_build_report(&self) -> BuildReport {
        self.base_build
    }

    /// The medoid entry node.
    pub fn medoid(&self) -> u32 {
        self.medoid
    }

    /// The refined graph.
    pub fn graph(&self) -> &FlatGraph {
        &self.graph
    }
}

impl AnnIndex for NsgIndex {
    fn name(&self) -> String {
        "NSG".to_string()
    }

    fn num_vectors(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        let space =
            Space::new(&self.store, counter).with_quant(self.serving.quant_view(params));
        let mut seeds = Vec::new();
        self.seeds.seeds(space, query, params.seed_count, &mut seeds);
        let res = self.scratch.with(self.store.len(), params.beam_width, |scratch| {
            beam_search_frozen(
                &self.graph,
                self.serving.csr(),
                space,
                query,
                &seeds,
                params.k,
                params.beam_width,
                scratch,
                params.termination(),
            )
        });
        self.serving.finish(res)
    }

    fn freeze(&mut self) {
        self.serving.freeze(&self.graph);
    }

    fn is_frozen(&self) -> bool {
        self.serving.is_frozen()
    }

    fn quantize(&mut self, spec: gass_core::CodecSpec) {
        self.serving.quantize(&self.store, spec);
    }

    fn is_quantized(&self) -> bool {
        self.serving.is_quantized()
    }

    fn reorder(&mut self, strategy: ReorderStrategy) {
        let entries = [self.medoid];
        if let Some(map) =
            self.serving.reorder(&self.graph, &mut self.store, strategy, &entries)
        {
            self.seeds.reorder(&map);
            self.medoid = map.to_new(self.medoid);
        }
    }

    fn is_reordered(&self) -> bool {
        self.serving.is_reordered()
    }

    fn reorder_strategy(&self) -> ReorderStrategy {
        self.serving.strategy()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            nodes: self.graph.num_nodes(),
            edges: self.graph.num_edges(),
            avg_degree: self.graph.avg_degree(),
            max_degree: self.graph.max_degree(),
            graph_bytes: self.graph.heap_bytes() + self.serving.graph_bytes(),
            aux_bytes: self.serving.aux_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_data::ground_truth::ground_truth;
    use gass_data::synth::deep_like;

    #[test]
    fn nsg_high_recall() {
        let base = deep_like(500, 1);
        let queries = deep_like(15, 2);
        let idx = NsgIndex::build(base.clone(), NsgParams::small());
        let gt = ground_truth(&base, &queries, 10);
        let counter = DistCounter::new();
        let params = QueryParams::new(10, 64).with_seed_count(8);
        let mut hit = 0;
        for (qi, row) in gt.iter().enumerate() {
            let res = idx.search(queries.get(qi as u32), &params, &counter);
            hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
        }
        let recall = hit as f64 / 150.0;
        assert!(recall > 0.9, "NSG recall too low: {recall}");
    }

    #[test]
    fn graph_is_connected_from_medoid() {
        let base = deep_like(300, 3);
        let idx = NsgIndex::build(base, NsgParams::small());
        // FlatGraph has the same adjacency; rebuild adjacency reachability
        // through the flat view.
        let g = idx.graph();
        let mut seen = vec![false; g.num_nodes()];
        let mut queue = std::collections::VecDeque::from([idx.medoid()]);
        seen[idx.medoid() as usize] = true;
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "NSG must be connected from its medoid");
    }

    #[test]
    fn build_charges_base_graph_too() {
        let base = deep_like(200, 5);
        let idx = NsgIndex::build(base, NsgParams::small());
        assert!(idx.build_report().dist_calcs > idx.base_build_report().dist_calcs);
        assert_eq!(idx.name(), "NSG");
    }
}
