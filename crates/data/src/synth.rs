//! Synthetic analogs of the paper's seven real dataset collections, plus
//! its three power-law datasets.
//!
//! The paper evaluates on Deep, Sift, GIST, ImageNet, SALD, Seismic and
//! Text-to-Image (up to 1 billion vectors) — collections we cannot ship.
//! The *relevant* properties for comparing graph methods are intrinsic:
//! Local Intrinsic Dimensionality, Local Relative Contrast, cluster
//! structure, and skew (the paper's own Figure 4 frames dataset hardness
//! exactly this way). Each generator below controls those properties to
//! match the paper's measured ordering:
//!
//! * ImageNet, Deep, Sift — **easy**: low intrinsic dimensionality (points
//!   near a low-dimensional manifold / well-separated clusters), high
//!   contrast;
//! * GIST, SALD — **moderate**: higher ambient or smoother structure;
//! * Seismic, Text-to-Image, RandPow — **hard**: near-isotropic noise at
//!   full ambient dimensionality (LID ≈ d), low contrast.
//!
//! DESIGN.md documents each substitution; EXPERIMENTS.md reports the
//! measured LID/LRC so the analogy is checkable (Figure 4 harness).

use crate::util::{fill_gaussian, gaussian, power_law};
use gass_core::store::VectorStore;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A mixture of Gaussian clusters whose means live on a random
/// `intrinsic_dim`-dimensional subspace of the ambient space; `noise`
/// controls the off-manifold jitter. The workhorse behind most analogs.
pub fn manifold_mixture(
    n: usize,
    dim: usize,
    intrinsic_dim: usize,
    n_clusters: usize,
    cluster_spread: f32,
    noise: f32,
    seed: u64,
) -> VectorStore {
    let mut store = VectorStore::with_capacity(dim, n);
    manifold_mixture_rows(
        n,
        dim,
        intrinsic_dim,
        n_clusters,
        cluster_spread,
        noise,
        seed,
        |v| {
            store.push(v);
        },
    );
    store
}

/// Row-streaming core of [`manifold_mixture`]: generates the *same*
/// vectors in the same order but hands each row to `emit` instead of
/// accumulating a store — the generator behind the mapped-file dataset
/// writers in [`crate::stream`], where the full tier never fits in RAM.
#[allow(clippy::too_many_arguments)]
pub fn manifold_mixture_rows(
    n: usize,
    dim: usize,
    intrinsic_dim: usize,
    n_clusters: usize,
    cluster_spread: f32,
    noise: f32,
    seed: u64,
    mut emit: impl FnMut(&[f32]),
) {
    assert!(n > 0 && dim > 0 && intrinsic_dim > 0 && n_clusters > 0);
    let intrinsic_dim = intrinsic_dim.min(dim);
    let mut rng = SmallRng::seed_from_u64(seed);
    // Random (non-orthonormalized) projection: intrinsic -> ambient.
    let mut basis = vec![0.0f32; intrinsic_dim * dim];
    fill_gaussian(&mut rng, &mut basis);
    let scale = 1.0 / (intrinsic_dim as f32).sqrt();

    // Cluster centers in intrinsic space.
    let mut centers = vec![0.0f32; n_clusters * intrinsic_dim];
    for c in centers.iter_mut() {
        *c = gaussian(&mut rng) * 4.0;
    }

    let mut z = vec![0.0f32; intrinsic_dim];
    let mut v = vec![0.0f32; dim];
    for _ in 0..n {
        let c = rng.random_range(0..n_clusters);
        for (j, zj) in z.iter_mut().enumerate() {
            *zj = centers[c * intrinsic_dim + j] + gaussian(&mut rng) * cluster_spread;
        }
        for (d, vd) in v.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (j, zj) in z.iter().enumerate() {
                acc += zj * basis[j * dim + d];
            }
            *vd = acc * scale + gaussian(&mut rng) * noise;
        }
        emit(&v);
    }
}

/// Deep-like (96-d CNN embeddings): low intrinsic dimensionality, mild
/// cluster structure — an easy dataset (paper Fig. 4).
pub fn deep_like(n: usize, seed: u64) -> VectorStore {
    // Overlapping clusters on a 16-d manifold: low LID / high LRC like the
    // paper's Deep, while staying navigable for k-NN-graph methods (the
    // paper's 1M-tier has NSG/SSG among the leaders on Deep).
    manifold_mixture(n, 96, 16, 16, 2.2, 0.1, seed)
}

/// Streaming [`deep_like`]: identical rows in identical order, emitted one
/// at a time (see [`manifold_mixture_rows`]).
pub fn deep_like_rows(n: usize, seed: u64, emit: impl FnMut(&[f32])) {
    manifold_mixture_rows(n, 96, 16, 16, 2.2, 0.1, seed, emit)
}

/// Sift-like (128-d local descriptors): non-negative, clustered, slightly
/// harder than Deep.
pub fn sift_like(n: usize, seed: u64) -> VectorStore {
    let mut s = manifold_mixture(n, 128, 20, 16, 2.0, 0.12, seed);
    // SIFT values are non-negative histogram bins: fold negatives over.
    for i in 0..s.len() as u32 {
        for x in s.get_mut(i) {
            *x = x.abs();
        }
    }
    s
}

/// GIST-like (960-d global descriptors): high ambient dimension with
/// moderate intrinsic structure.
pub fn gist_like(n: usize, seed: u64) -> VectorStore {
    manifold_mixture(n, 960, 24, 16, 2.0, 0.06, seed)
}

/// ImageNet-like (256-d PCA'd ResNet50 embeddings): well-separated class
/// clusters — the easiest dataset in the paper's workload.
pub fn imagenet_like(n: usize, seed: u64) -> VectorStore {
    // Lowest intrinsic dimensionality in the roster (the paper's easiest
    // dataset), with gently overlapping class clusters.
    manifold_mixture(n, 256, 10, 24, 1.2, 0.05, seed)
}

/// SALD-like (128-d MRI data series): smooth z-normalized random walks —
/// series correlation structure, moderate hardness.
pub fn sald_like(n: usize, seed: u64) -> VectorStore {
    let dim = 128;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut store = VectorStore::with_capacity(dim, n);
    let mut v = vec![0.0f32; dim];
    for _ in 0..n {
        let mut acc = 0.0f32;
        for x in v.iter_mut() {
            acc += gaussian(&mut rng) * 0.3;
            *x = acc;
        }
        znormalize(&mut v);
        store.push(&v);
    }
    store
}

/// Seismic-like (256-d earthquake recordings): oscillatory signals buried
/// in heavy noise — the hardest real dataset in the paper (high LID, low
/// LRC; no method exceeded 0.8 recall on Seismic25GB).
pub fn seismic_like(n: usize, seed: u64) -> VectorStore {
    let dim = 256;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut store = VectorStore::with_capacity(dim, n);
    let mut v = vec![0.0f32; dim];
    for _ in 0..n {
        let freq = rng.random_range(0.02..0.3f32);
        let phase = rng.random_range(0.0..std::f32::consts::TAU);
        let amp = rng.random_range(0.2..1.0f32);
        for (t, x) in v.iter_mut().enumerate() {
            // Weak signal + strong independent noise => LID close to the
            // ambient dimension.
            *x = amp * (freq * t as f32 + phase).sin() * 0.3 + gaussian(&mut rng);
        }
        znormalize(&mut v);
        store.push(&v);
    }
    store
}

/// Text-to-Image-like (200-d cross-modal embeddings): moderate structure;
/// pair with [`crate::queries::t2i_queries`] for the paper's
/// out-of-distribution query property.
pub fn t2i_like(n: usize, seed: u64) -> VectorStore {
    // High intrinsic dimensionality with only weak cluster structure: the
    // paper measures Text-to-Image among its hardest datasets (high LID,
    // low LRC), on top of its out-of-distribution query property.
    manifold_mixture(n, 200, 120, 1, 2.0, 0.4, seed)
}

/// RandPow (256-d power-law coordinates with exponent `a`): the paper's
/// synthetic distribution family — `a = 0` uniform, `a = 5` skewed,
/// `a = 50` very skewed.
pub fn rand_pow(n: usize, a: f64, seed: u64) -> VectorStore {
    let dim = 256;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut store = VectorStore::with_capacity(dim, n);
    let mut v = vec![0.0f32; dim];
    for _ in 0..n {
        for x in v.iter_mut() {
            *x = power_law(&mut rng, a);
        }
        store.push(&v);
    }
    store
}

/// In-place z-normalization (zero mean, unit variance; constant vectors
/// are left centered).
pub fn znormalize(v: &mut [f32]) {
    let n = v.len() as f32;
    let mean = v.iter().sum::<f32>() / n;
    let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
    let std = var.sqrt();
    if std > 1e-12 {
        for x in v.iter_mut() {
            *x = (*x - mean) / std;
        }
    } else {
        for x in v.iter_mut() {
            *x -= mean;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_requested_shape() {
        assert_eq!(deep_like(50, 1).dim(), 96);
        assert_eq!(deep_like(50, 1).len(), 50);
        assert_eq!(sift_like(20, 1).dim(), 128);
        assert_eq!(gist_like(10, 1).dim(), 960);
        assert_eq!(imagenet_like(20, 1).dim(), 256);
        assert_eq!(sald_like(20, 1).dim(), 128);
        assert_eq!(seismic_like(20, 1).dim(), 256);
        assert_eq!(t2i_like(20, 1).dim(), 200);
        assert_eq!(rand_pow(20, 5.0, 1).dim(), 256);
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let a = deep_like(30, 7);
        let b = deep_like(30, 7);
        assert_eq!(a.as_flat(), b.as_flat());
        let c = deep_like(30, 8);
        assert_ne!(a.as_flat(), c.as_flat());
    }

    #[test]
    fn sift_like_is_non_negative() {
        let s = sift_like(40, 3);
        assert!(s.as_flat().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn znormalized_series_have_unit_variance() {
        for store in [sald_like(25, 4), seismic_like(25, 4)] {
            for (_, v) in store.iter() {
                let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
                let var: f32 =
                    v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32;
                assert!(mean.abs() < 1e-3, "mean {mean}");
                assert!((var - 1.0).abs() < 1e-2, "var {var}");
            }
        }
    }

    #[test]
    fn rand_pow_values_in_unit_interval() {
        let s = rand_pow(30, 50.0, 5);
        assert!(s.as_flat().iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Skewed: most mass near 1.
        let mean: f32 = s.as_flat().iter().sum::<f32>() / s.as_flat().len() as f32;
        assert!(mean > 0.9);
    }

    #[test]
    fn imagenet_clusters_are_tight() {
        // Average NN distance should be much smaller than average pairwise
        // distance when clusters are well separated.
        let s = imagenet_like(200, 6);
        let mut nn_sum = 0.0f64;
        let mut all_sum = 0.0f64;
        let mut all_cnt = 0u64;
        for i in 0..200u32 {
            let mut nn = f32::INFINITY;
            for j in 0..200u32 {
                if i != j {
                    let d = gass_core::l2_sq(s.get(i), s.get(j));
                    nn = nn.min(d);
                    all_sum += d as f64;
                    all_cnt += 1;
                }
            }
            nn_sum += nn as f64;
        }
        let mean_nn = nn_sum / 200.0;
        let mean_all = all_sum / all_cnt as f64;
        assert!(
            mean_nn * 3.0 < mean_all,
            "expected strong contrast: nn {mean_nn} vs all {mean_all}"
        );
    }

    #[test]
    fn znormalize_constant_vector_is_safe() {
        let mut v = vec![5.0f32; 8];
        znormalize(&mut v);
        assert!(v.iter().all(|&x| x == 0.0));
    }
}
