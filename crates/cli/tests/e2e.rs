//! End-to-end CLI test: generate → build → info → query, through the real
//! binary.

use std::process::Command;

fn gass() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gass"))
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn gass");
    assert!(
        out.status.success(),
        "command failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn generate_build_query_roundtrip() {
    let dir = std::env::temp_dir().join("gass_cli_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("base.store.gass");
    let graph = dir.join("base.hnsw.gass");
    let queries = dir.join("q.store.gass");

    let out = run_ok(gass().args([
        "generate",
        "--dataset",
        "deep",
        "--n",
        "800",
        "--seed",
        "5",
        "--out",
        store.to_str().unwrap(),
    ]));
    assert!(out.contains("800 x 96d"), "unexpected generate output: {out}");

    run_ok(gass().args([
        "generate",
        "--dataset",
        "deep",
        "--n",
        "10",
        "--seed",
        "9",
        "--out",
        queries.to_str().unwrap(),
    ]));

    let out = run_ok(gass().args([
        "build",
        "--method",
        "hnsw",
        "--store",
        store.to_str().unwrap(),
        "--out",
        graph.to_str().unwrap(),
    ]));
    assert!(out.contains("built hnsw over 800 nodes"), "{out}");

    let out = run_ok(gass().args(["info", "--file", graph.to_str().unwrap()]));
    assert!(out.contains("flat graph, 800 nodes"), "{out}");
    let out = run_ok(gass().args(["info", "--file", store.to_str().unwrap()]));
    assert!(out.contains("vector store, 800 x 96d"), "{out}");

    let out = run_ok(gass().args([
        "query",
        "--store",
        store.to_str().unwrap(),
        "--graph",
        graph.to_str().unwrap(),
        "--queries",
        queries.to_str().unwrap(),
        "--k",
        "5",
        "--beam",
        "64",
    ]));
    // recall@5=0.xxxx — parse and require a sane floor.
    let recall: f64 = out
        .split("recall@5=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no recall in output: {out}"));
    assert!(recall > 0.8, "CLI query recall too low: {recall} ({out})");

    // Reordered serving answers in original ids, so recall and per-query
    // distance counts must match the unreordered run exactly.
    let baseline = out;
    for strategy in ["degree", "bfs", "rcm", "hub"] {
        let out = run_ok(gass().args([
            "query",
            "--store",
            store.to_str().unwrap(),
            "--graph",
            graph.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "--k",
            "5",
            "--beam",
            "64",
            "--reorder",
            strategy,
        ]));
        assert!(out.contains(&format!("reorder={strategy}")), "{out}");
        let stat_line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("recall@"))
                .map(|l| l.split("ms/query").next().unwrap().trim().to_string())
                .unwrap_or_else(|| panic!("no recall line in: {s}"))
        };
        assert_eq!(
            stat_line(&baseline),
            stat_line(&out),
            "--reorder {strategy} changed results"
        );
    }
}

#[test]
fn quantized_query_ladder() {
    let dir = std::env::temp_dir().join("gass_cli_e2e_quant");
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("base.store.gass");
    let graph = dir.join("base.hnsw.gass");
    let queries = dir.join("q.store.gass");
    run_ok(gass().args([
        "generate",
        "--dataset",
        "deep",
        "--n",
        "800",
        "--seed",
        "5",
        "--out",
        store.to_str().unwrap(),
    ]));
    run_ok(gass().args([
        "generate",
        "--dataset",
        "deep",
        "--n",
        "10",
        "--seed",
        "9",
        "--out",
        queries.to_str().unwrap(),
    ]));
    run_ok(gass().args([
        "build",
        "--method",
        "hnsw",
        "--store",
        store.to_str().unwrap(),
        "--out",
        graph.to_str().unwrap(),
    ]));
    // Each rung serves on codes (u8 > 0) and keeps usable recall thanks to
    // the exact rerank pool; the PQ rung pins its geometry via --pq-m.
    let rungs: [(&str, &[&str], &str); 3] = [
        ("sq8", &[], "quant=sq8"),
        ("sq4", &[], "quant=sq4"),
        ("pq", &["--pq-m", "48", "--rerank-factor", "16"], "quant=pq(m=48)"),
    ];
    for (quant, extra, label) in rungs {
        let mut cmd = gass();
        cmd.args([
            "query",
            "--store",
            store.to_str().unwrap(),
            "--graph",
            graph.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "--k",
            "5",
            "--beam",
            "64",
            "--quant",
            quant,
        ]);
        cmd.args(extra);
        let out = run_ok(&mut cmd);
        assert!(out.contains(label), "missing `{label}` in: {out}");
        let u8s: u64 = out
            .split("u8=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no u8 counter in output: {out}"));
        assert!(u8s > 0, "{quant} rung did not traverse on codes: {out}");
        let recall: f64 = out
            .split("recall@5=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no recall in output: {out}"));
        assert!(recall > 0.7, "{quant} rung recall too low: {recall} ({out})");
    }
}

#[test]
fn sharded_build_query_roundtrip() {
    let dir = std::env::temp_dir().join("gass_cli_e2e_sharded");
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("base.store.gass");
    let queries = dir.join("q.store.gass");
    let sharded = dir.join("sharded_idx");
    run_ok(gass().args([
        "generate",
        "--dataset",
        "deep",
        "--n",
        "1500",
        "--seed",
        "5",
        "--out",
        store.to_str().unwrap(),
    ]));
    run_ok(gass().args([
        "generate",
        "--dataset",
        "deep",
        "--n",
        "12",
        "--seed",
        "9",
        "--out",
        queries.to_str().unwrap(),
    ]));
    let out = run_ok(gass().args([
        "build",
        "--method",
        "hnsw",
        "--store",
        store.to_str().unwrap(),
        "--out",
        sharded.to_str().unwrap(),
        "--shards",
        "3",
        "--nprobe",
        "1",
    ]));
    assert!(out.contains("built hnsw x 3 shards over 1500 vectors"), "{out}");
    let out = run_ok(gass().args(["info", "--file", sharded.to_str().unwrap()]));
    assert!(
        out.contains("sharded index, 3 shards x 96d, 1500 vectors total, nprobe 1"),
        "{out}"
    );

    let query = |nprobe: &str, extra_env: Option<(&str, &str)>| {
        let mut cmd = gass();
        cmd.args([
            "query",
            "--sharded",
            sharded.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "--k",
            "5",
            "--beam",
            "64",
            "--nprobe",
            nprobe,
        ]);
        if let Some((k, v)) = extra_env {
            cmd.env(k, v);
        }
        run_ok(&mut cmd)
    };
    let recall_of = |out: &str| -> f64 {
        out.split("recall@5=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no recall in output: {out}"))
    };

    // Full probe merges every shard's answer: the recall floor holds, and
    // probing a superset of shards can never lose a true neighbor (a true
    // top-k member is displaced only by strictly closer vectors, all of
    // which are themselves in the true top-k).
    let full = query("3", None);
    let one = query("1", None);
    assert!(recall_of(&full) > 0.85, "full-probe recall too low: {full}");
    assert!(
        recall_of(&full) >= recall_of(&one),
        "recall fell while probing more shards:\nnprobe=1: {one}\nnprobe=3: {full}"
    );

    // Shard stores are written in the mapped layout; the heap fallback
    // (GASS_NO_MMAP=1) must be observationally identical to serving
    // through the mapping.
    let no_mmap = query("3", Some(("GASS_NO_MMAP", "1")));
    let stat_line = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("recall@"))
            .map(|l| l.split("ms/query").next().unwrap().trim().to_string())
            .unwrap_or_else(|| panic!("no recall line in: {s}"))
    };
    assert_eq!(stat_line(&full), stat_line(&no_mmap), "mmap and heap serving disagree");

    // The quantized ladder applies per shard.
    let mut cmd = gass();
    cmd.args([
        "query",
        "--sharded",
        sharded.to_str().unwrap(),
        "--queries",
        queries.to_str().unwrap(),
        "--k",
        "5",
        "--beam",
        "64",
        "--nprobe",
        "3",
        "--quant",
        "sq8",
    ]);
    let out = run_ok(&mut cmd);
    assert!(out.contains("quant=sq8"), "{out}");
    assert!(recall_of(&out) > 0.8, "sharded sq8 recall too low: {out}");

    // --nprobe only makes sense against a sharded directory.
    let out = gass()
        .args(["query", "--store", "x", "--graph", "y", "--queries", "z", "--nprobe", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--nprobe requires --sharded"),
        "unhelpful nprobe error"
    );
}

#[test]
fn adaptive_termination_query_flags() {
    let dir = std::env::temp_dir().join("gass_cli_e2e_term");
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("base.store.gass");
    let graph = dir.join("base.hnsw.gass");
    let queries = dir.join("q.store.gass");
    run_ok(gass().args([
        "generate",
        "--dataset",
        "deep",
        "--n",
        "800",
        "--seed",
        "5",
        "--out",
        store.to_str().unwrap(),
    ]));
    run_ok(gass().args([
        "generate",
        "--dataset",
        "deep",
        "--n",
        "10",
        "--seed",
        "9",
        "--out",
        queries.to_str().unwrap(),
    ]));
    run_ok(gass().args([
        "build",
        "--method",
        "hnsw",
        "--store",
        store.to_str().unwrap(),
        "--out",
        graph.to_str().unwrap(),
    ]));
    let query = |extra: &[&str]| {
        let mut args = vec![
            "query",
            "--store",
            store.to_str().unwrap(),
            "--graph",
            graph.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "--k",
            "5",
            "--beam",
            "64",
        ];
        args.extend_from_slice(extra);
        run_ok(gass().args(&args))
    };
    let stat = |out: &str, tag: &str| -> f64 {
        out.split(tag)
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.split('(').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no {tag} in output: {out}"))
    };

    // Pinned fixed baseline (immune to a GASS_TERM in the environment,
    // e.g. the CI adaptive-smoke leg).
    let fixed = query(&["--term", "fixed"]);
    assert!(fixed.contains("term=fixed"), "{fixed}");
    let fixed_dists = stat(&fixed, "dists/query=");
    let fixed_recall = stat(&fixed, "recall@5=");
    assert!(fixed_recall > 0.8, "fixed recall too low: {fixed}");

    // Each adaptive policy is echoed back and never spends more than the
    // fixed beam (a terminated run is a prefix of the fixed run).
    for (flag, tag) in
        [("saturation:4", "term=saturation:4"), ("distratio:0.3", "term=distratio")]
    {
        let out = query(&["--term", flag]);
        assert!(out.contains(tag), "{out}");
        assert!(
            stat(&out, "dists/query=") <= fixed_dists,
            "--term {flag} spent more than fixed: {out}\nvs fixed: {fixed}"
        );
        assert!(stat(&out, "recall@5=") > 0.5, "--term {flag} recall collapsed: {out}");
    }

    // A hard budget is respected to within seeds + one neighbor list.
    let out = query(&["--term", "fixed", "--max-dists", "150"]);
    assert!(out.contains("max-dists=150"), "{out}");
    let budget_dists = stat(&out, "dists/query=");
    assert!(
        budget_dists <= 150.0 + 100.0,
        "--max-dists 150 overshot: {budget_dists} dists/query ({out})"
    );

    // Gibberish policies are rejected with a pointer at the flag.
    let out = gass()
        .args([
            "query",
            "--store",
            "x",
            "--graph",
            "y",
            "--queries",
            "z",
            "--term",
            "sometimes",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--term"), "unhelpful --term error: {err}");
}

#[test]
fn rejects_zero_rerank_factor() {
    // Validation fires before any file is touched, so bogus paths are fine.
    let out = gass()
        .args([
            "query",
            "--store",
            "x",
            "--graph",
            "y",
            "--queries",
            "z",
            "--quant",
            "sq8",
            "--rerank-factor",
            "0",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--rerank-factor must be at least 1"),
        "unhelpful rerank error: {err}"
    );
}

#[test]
fn rejects_pq_m_not_dividing_dim() {
    let dir = std::env::temp_dir().join("gass_cli_e2e_pqm");
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("base.store.gass");
    let graph = dir.join("base.hnsw.gass");
    run_ok(gass().args([
        "generate",
        "--dataset",
        "deep",
        "--n",
        "200",
        "--seed",
        "5",
        "--out",
        store.to_str().unwrap(),
    ]));
    run_ok(gass().args([
        "build",
        "--method",
        "hnsw",
        "--store",
        store.to_str().unwrap(),
        "--out",
        graph.to_str().unwrap(),
    ]));
    // 96 dims: 7 does not divide, so the CLI must fail up front with a
    // clear message naming both numbers, not panic inside the encoder.
    let out = gass()
        .args([
            "query",
            "--store",
            store.to_str().unwrap(),
            "--graph",
            graph.to_str().unwrap(),
            "--queries",
            store.to_str().unwrap(),
            "--quant",
            "pq",
            "--pq-m",
            "7",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--pq-m 7") && err.contains("96"), "unhelpful pq-m error: {err}");
    // --pq-m without the pq codec is rejected too.
    let out = gass()
        .args([
            "query",
            "--store",
            store.to_str().unwrap(),
            "--graph",
            graph.to_str().unwrap(),
            "--queries",
            store.to_str().unwrap(),
            "--quant",
            "sq8",
            "--pq-m",
            "8",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--pq-m requires --quant pq"),
        "unhelpful pq-m/codec mismatch error"
    );
}

#[test]
fn helpful_errors() {
    let out = gass().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = gass()
        .args(["build", "--method", "elpis", "--store", "x", "--out", "y"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = gass().args(["info", "--file", "/definitely/not/a/file"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn help_lists_all_commands() {
    let out = run_ok(gass().args(["help"]));
    for cmd in ["generate", "build", "query", "info", "help"] {
        assert!(out.contains(cmd), "help missing `{cmd}`");
    }
}
