//! # gass-core
//!
//! Core substrates for graph-based approximate nearest-neighbor (ANN)
//! search, as surveyed and evaluated in *"Graph-Based Vector Search: An
//! Experimental Evaluation of the State-of-the-Art"* (SIGMOD 2025).
//!
//! Everything the twelve state-of-the-art methods share lives here:
//!
//! * [`store::VectorStore`] — contiguous dense `f32` vectors;
//! * [`distance`] — Euclidean kernels and the distance-call accounting that
//!   underpins every experiment;
//! * [`graph`] — adjacency-list and flat contiguous proximity-graph
//!   layouts;
//! * [`search`] — the beam search (the paper's Algorithm 1) used verbatim
//!   by every method, plus greedy descent and the exact serial scan;
//! * [`nd`] — the three Neighborhood Diversification strategies (RND,
//!   RRND, MOND) and the NoND baseline;
//! * [`seed`] — the Seed Selection abstraction with the structure-free
//!   strategies (SF, MD, KS);
//! * [`index`] — the [`index::AnnIndex`] trait all methods implement, and
//!   the scratch pool for allocation-free querying.
//!
//! Methods themselves live in `gass-graphs`; tree and hash substrates in
//! `gass-trees` and `gass-hash`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod distance;
pub mod fanout;
pub mod graph;
pub mod index;
pub mod kmeans;
pub mod mmap;
pub mod nd;
pub mod neighbor;
pub mod numa;
pub mod par;
pub mod persist;
pub mod quant;
pub mod reorder;
pub mod search;
pub mod seed;
pub mod sharded;
pub mod stats;
pub mod store;
pub mod term;
pub mod visited;

pub use distance::{
    dot, l2, l2_sq, l2_sq_batch, prefetch_enabled, set_prefetch_enabled, set_simd_enabled,
    simd_backend, DistCounter, QuantView, Space,
};
pub use fanout::{
    fanout_enabled, fanout_workers, set_fanout_enabled, set_fanout_workers, FanoutPool,
};
pub use graph::{AdjacencyGraph, CsrGraph, FlatGraph, GraphView};
pub use index::{
    pin_scratch_home, search_batch_parallel, AnnIndex, IndexStats, PrebuiltIndex, QueryParams,
    ScratchPool, SerialScanIndex,
};
pub use kmeans::{balanced_kmeans, kmeans as kmeans_cluster, maximin_lloyd, Clustering};
pub use mmap::{mmap_enabled, MmapBuf, MmapRegion};
pub use nd::NdStrategy;
pub use neighbor::{BoundedMaxHeap, Neighbor, SortedBuffer};
pub use numa::{num_nodes, numa_enabled, pin_to_node, run_on_node, set_numa_enabled};
pub use par::{
    bounded_prefix_batches, effective_threads, par_for, par_map, par_map_with, par_workers,
    prefix_doubling_batches, ConcurrentAdjacency,
};
pub use persist::{
    load_codec, load_flat_graph, load_permutation, load_quantized, load_shard_table,
    load_store, open_codec, open_store, peek_kind, save_codec, save_codec_mapped,
    save_flat_graph, save_permutation, save_quantized, save_shard_table, save_store,
    save_store_mapped, MappedStoreWriter, PersistError, ShardTable,
};
pub use quant::{
    l2_sq_u4, l2_sq_u4_batch, l2_sq_u8, l2_sq_u8_batch, pq_auto_m, pq_scan, pq_scan_batch,
    quant_forced, CodecSpec, CodecStore, PqStore, PreparedQuery, QuantizedStore, Sq4Store,
};
pub use reorder::{
    compute_permutation, mean_edge_span, reorder_forced, IdRemap, ReorderStrategy, ServingState,
};
pub use search::{
    beam_search, beam_search_coalesced, beam_search_frozen, beam_search_terminated,
    beam_search_with_sink, greedy_search, greedy_search_budgeted, greedy_search_with,
    serial_scan, SearchResult, SearchScratch, SearchStats, COALESCE_LANES,
};
pub use seed::{FixedSeed, MedoidSeed, RandomSeeds, SeedProvider, StaticSeeds};
pub use sharded::{ShardedIndex, ShardedParams};
pub use stats::Histogram;
pub use store::VectorStore;
pub use term::{term_forced, TermState, Termination, TerminationPolicy};
pub use visited::VisitedSet;
