//! Extension experiment: parallel construction speedup at equal quality.
//!
//! Builds HNSW, Vamana, and KGraph over a 10K-vector Deep analog twice —
//! `threads = 1` (the exact sequential algorithm) and `threads = 8` — and
//! reports wall-clock speedup, recall@10 at a fixed beam width, and the
//! construction distance-call counts for both builds.
//!
//! The acceptance shape (on a machine with >= 8 physical cores): >= 3x
//! build speedup at threads = 8 with recall@10 within +-1 point of the
//! serial build. The JSON records `host_cores` so results from
//! core-starved runners (e.g. a 1-CPU container, where the parallel path
//! still runs but cannot speed anything up) are self-describing.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin ext_parallel_build
//! ```
//!
//! `GASS_SCALE` scales the dataset, `GASS_THREADS` overrides the parallel
//! thread count (default 8). Output: `results/ext_parallel_build.json`.

use gass_bench::{num_queries, results_dir, scale};
use gass_core::distance::DistCounter;
use gass_core::index::{AnnIndex, QueryParams};
use gass_data::DatasetKind;
use gass_eval::recall_at_k;
use gass_graphs::{
    HnswIndex, HnswParams, KGraphIndex, KGraphParams, VamanaIndex, VamanaParams,
};
use std::time::Instant;

const K: usize = 10;
const BEAM: usize = 80;

struct BuildRun {
    seconds: f64,
    dist_calcs: u64,
    recall: f64,
}

fn measure(
    index: &dyn AnnIndex,
    seconds: f64,
    dist_calcs: u64,
    queries: &gass_core::store::VectorStore,
    truth: &[Vec<gass_core::neighbor::Neighbor>],
) -> BuildRun {
    let counter = DistCounter::new();
    let params = QueryParams::new(K, BEAM).with_seed_count(16);
    let mut recall = 0.0;
    for (qi, row) in truth.iter().enumerate() {
        let res = index.search(queries.get(qi as u32), &params, &counter);
        recall += recall_at_k(row, &res.neighbors, K);
    }
    BuildRun { seconds, dist_calcs, recall: recall / truth.len() as f64 }
}

fn json_run(r: &BuildRun) -> String {
    format!(
        "{{\"build_seconds\": {:.4}, \"build_dist_calcs\": {}, \"recall_at_10\": {:.4}}}",
        r.seconds, r.dist_calcs, r.recall
    )
}

fn main() {
    let n = 10_000 * scale();
    let threads: usize =
        std::env::var("GASS_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(8).max(2);
    let host_cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let (base, queries) = DatasetKind::Deep.generate(n, num_queries(), 77);
    let truth = gass_data::ground_truth(&base, &queries, K);

    let mut entries = Vec::new();
    type Builder = Box<dyn Fn(usize) -> (Box<dyn AnnIndex>, u64)>;
    let methods: Vec<(&str, Builder)> = vec![
        ("hnsw", {
            let base = base.clone();
            Box::new(move |t| {
                let idx = HnswIndex::build(
                    base.clone(),
                    HnswParams { threads: t, ..HnswParams::small() },
                );
                let d = idx.build_report().dist_calcs;
                (Box::new(idx) as Box<dyn AnnIndex>, d)
            })
        }),
        ("vamana", {
            let base = base.clone();
            Box::new(move |t| {
                let idx = VamanaIndex::build(
                    base.clone(),
                    VamanaParams { threads: t, ..VamanaParams::small() },
                );
                let d = idx.build_report().dist_calcs;
                (Box::new(idx) as Box<dyn AnnIndex>, d)
            })
        }),
        ("kgraph", {
            let base = base.clone();
            Box::new(move |t| {
                let idx = KGraphIndex::build(
                    base.clone(),
                    KGraphParams { threads: t, ..KGraphParams::small() },
                );
                let d = idx.build_report().dist_calcs;
                (Box::new(idx) as Box<dyn AnnIndex>, d)
            })
        }),
    ];

    for (name, build) in &methods {
        let t0 = Instant::now();
        let (serial_idx, serial_dists) = build(1);
        let serial_secs = t0.elapsed().as_secs_f64();
        let serial = measure(serial_idx.as_ref(), serial_secs, serial_dists, &queries, &truth);

        let t0 = Instant::now();
        let (par_idx, par_dists) = build(threads);
        let par_secs = t0.elapsed().as_secs_f64();
        let parallel = measure(par_idx.as_ref(), par_secs, par_dists, &queries, &truth);

        let speedup = serial.seconds / parallel.seconds.max(1e-9);
        let delta = parallel.recall - serial.recall;
        println!(
            "{name}: serial {:.2}s r@10 {:.4} | threads={threads} {:.2}s r@10 {:.4} | speedup {:.2}x, recall delta {:+.4}",
            serial.seconds, serial.recall, parallel.seconds, parallel.recall, speedup, delta
        );
        entries.push(format!(
            "    {{\n      \"method\": \"{name}\",\n      \"serial\": {},\n      \"parallel\": {},\n      \"speedup\": {:.3},\n      \"recall_delta\": {:.4}\n    }}",
            json_run(&serial),
            json_run(&parallel),
            speedup,
            delta
        ));
    }

    let json = format!(
        "{{\n  \"experiment\": \"ext_parallel_build\",\n  \"n\": {n},\n  \"num_queries\": {},\n  \"k\": {K},\n  \"beam_width\": {BEAM},\n  \"parallel_threads\": {threads},\n  \"host_cores\": {host_cores},\n  \"note\": \"speedup is only meaningful when host_cores >= parallel_threads\",\n  \"methods\": [\n{}\n  ]\n}}\n",
        num_queries(),
        entries.join(",\n")
    );
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join("ext_parallel_build.json");
    std::fs::write(&path, &json).expect("write results");
    println!("wrote {}", path.display());
}
