//! Seed Selection (SS) strategies — Section 3.3 of the paper.
//!
//! Beam search warms its candidate buffer with *seed* nodes; which seeds are
//! chosen changes how quickly the traversal converges, and — for methods
//! that run a beam search per inserted node — also changes construction
//! cost (Table 2).
//!
//! This module defines the [`SeedProvider`] abstraction plus the strategies
//! that need no auxiliary structure:
//!
//! * **SF** — a single fixed (randomly chosen) entry node ([`FixedSeed`]).
//! * **MD** — the dataset medoid as fixed entry ([`MedoidSeed`]).
//! * **KS** — `k` nodes sampled uniformly at random per query
//!   ([`RandomSeeds`]), optionally anchored at the medoid like NSG/Vamana.
//!
//! Structure-backed strategies live next to their structures: **SN**
//! (stacked NSW) in `gass-graphs::hnsw`, **KD** in `gass-trees::kdtree`,
//! **KM** in `gass-trees::bkt`, **LSH** in `gass-hash`, VP-tree seeds in
//! `gass-trees::vptree`. All implement this same trait, so any method can
//! be queried under any strategy — the instrument behind Figure 6.

use crate::distance::Space;
use crate::reorder::IdRemap;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::Mutex;

/// A source of beam-search seed nodes.
///
/// `count` is advisory: strategies with a natural seed count (SF, MD, SN)
/// may return fewer; KS returns exactly `count`.
pub trait SeedProvider: Send + Sync {
    /// Appends seed ids for `query` to `out` (cleared first by callers).
    /// Distance evaluations a strategy performs (e.g. SN's hierarchical
    /// descent) must go through `space` so they are counted.
    fn seeds(&self, space: Space<'_>, query: &[f32], count: usize, out: &mut Vec<u32>);

    /// Short label used in experiment tables ("SN", "KS", ...).
    fn label(&self) -> &'static str;

    /// Relabels every stored node id through `map` after the serving state
    /// was permuted (see `gass_core::reorder`). Afterwards [`Self::seeds`]
    /// must emit ids in the *new* space, selecting the same vectors it
    /// would have selected before the permutation.
    ///
    /// Deliberately has no default implementation: a provider that holds
    /// ids and silently skipped relabeling would seed the beam search with
    /// the wrong vectors.
    fn reorder(&mut self, map: &IdRemap);
}

/// **SF** — Single Fixed random entry point: one node chosen once, used for
/// every query. The paper's baseline strategy (not used by any SotA
/// method, included to isolate the value of smarter selection).
#[derive(Clone, Debug)]
pub struct FixedSeed {
    entry: u32,
}

impl FixedSeed {
    /// Fixes `entry` as the seed for all queries.
    pub fn new(entry: u32) -> Self {
        Self { entry }
    }

    /// Picks the fixed entry uniformly at random from `n` nodes.
    pub fn random(n: usize, rng_seed: u64) -> Self {
        assert!(n > 0, "cannot pick an entry point from an empty dataset");
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        Self { entry: rng.random_range(0..n as u32) }
    }

    /// The fixed entry node.
    pub fn entry(&self) -> u32 {
        self.entry
    }
}

impl SeedProvider for FixedSeed {
    fn seeds(&self, _space: Space<'_>, _query: &[f32], _count: usize, out: &mut Vec<u32>) {
        out.push(self.entry);
    }

    fn label(&self) -> &'static str {
        "SF"
    }

    fn reorder(&mut self, map: &IdRemap) {
        self.entry = map.to_new(self.entry);
    }
}

/// **MD** — the dataset medoid (approximated, as in NSG/Vamana, by the
/// vector closest to the centroid) as fixed entry point.
#[derive(Clone, Debug)]
pub struct MedoidSeed {
    medoid: u32,
}

impl MedoidSeed {
    /// Computes the centroid-medoid of `space`'s store.
    pub fn compute(space: Space<'_>) -> Self {
        Self { medoid: space.store().centroid_medoid() }
    }

    /// Uses a precomputed medoid id.
    pub fn with_medoid(medoid: u32) -> Self {
        Self { medoid }
    }

    /// The medoid node id.
    pub fn medoid(&self) -> u32 {
        self.medoid
    }
}

impl SeedProvider for MedoidSeed {
    fn seeds(&self, _space: Space<'_>, _query: &[f32], _count: usize, out: &mut Vec<u32>) {
        out.push(self.medoid);
    }

    fn label(&self) -> &'static str {
        "MD"
    }

    fn reorder(&mut self, map: &IdRemap) {
        self.medoid = map.to_new(self.medoid);
    }
}

/// **KS** — K-Sampled random seeds: fresh uniform sample per query, used by
/// KGraph, DPG, NSW, SSG; NSG and Vamana additionally anchor the sample at
/// the medoid (`anchor`).
#[derive(Debug)]
pub struct RandomSeeds {
    n: u32,
    anchor: Option<u32>,
    /// After a reorder: `old → new` table applied to every draw, so the
    /// RNG stream keeps selecting the *same vectors* (draws are
    /// interpreted in the original id space) and traversal stays
    /// isomorphic to the unreordered index.
    translate: Option<Vec<u32>>,
    rng_seed: u64,
    /// Per-query mode: draws come from an RNG keyed by the query bytes
    /// instead of the shared advancing stream, so the same query always
    /// gets the same seeds regardless of serving history.
    per_query: bool,
    rng: Mutex<SmallRng>,
}

impl RandomSeeds {
    /// Samples from `0..n`, deterministic under `rng_seed`. Consecutive
    /// calls advance a shared stream: reproducible as a *sequence*, but
    /// an individual query's seeds depend on how many draws preceded it.
    pub fn new(n: usize, rng_seed: u64) -> Self {
        assert!(n > 0, "cannot sample seeds from an empty dataset");
        Self {
            n: n as u32,
            anchor: None,
            translate: None,
            rng_seed,
            per_query: false,
            rng: Mutex::new(SmallRng::seed_from_u64(rng_seed)),
        }
    }

    /// Per-query determinism: each call draws from an RNG seeded by
    /// `rng_seed` mixed with a hash of the query bytes, so identical
    /// queries always get identical seeds — no shared stream, no history
    /// dependence. This is the serving-path variant: answers stay
    /// bit-identical across restarts, server configurations, and request
    /// interleavings.
    pub fn per_query(n: usize, rng_seed: u64) -> Self {
        let mut s = Self::new(n, rng_seed);
        s.per_query = true;
        s
    }

    /// Additionally always includes `anchor` (NSG/Vamana style: medoid +
    /// random warm-up).
    pub fn with_anchor(n: usize, anchor: u32, rng_seed: u64) -> Self {
        let mut s = Self::new(n, rng_seed);
        s.anchor = Some(anchor);
        s
    }

    fn draw(&self, rng: &mut SmallRng, want: usize, out: &mut Vec<u32>) {
        // Sampling with replacement is fine: beam search deduplicates, and
        // for n >> count collisions are negligible.
        match &self.translate {
            Some(t) => {
                for _ in 0..want {
                    out.push(t[rng.random_range(0..self.n) as usize]);
                }
            }
            None => {
                for _ in 0..want {
                    out.push(rng.random_range(0..self.n));
                }
            }
        }
    }
}

impl SeedProvider for RandomSeeds {
    fn seeds(&self, _space: Space<'_>, query: &[f32], count: usize, out: &mut Vec<u32>) {
        if let Some(a) = self.anchor {
            out.push(a);
        }
        let want = count.max(1);
        if self.per_query {
            // FNV-1a over the query's bit patterns keys the draw.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for v in query {
                h = (h ^ v.to_bits() as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut rng = SmallRng::seed_from_u64(self.rng_seed ^ h);
            self.draw(&mut rng, want, out);
        } else {
            let mut rng = self.rng.lock().unwrap();
            self.draw(&mut rng, want, out);
        }
    }

    fn label(&self) -> &'static str {
        "KS"
    }

    fn reorder(&mut self, map: &IdRemap) {
        if let Some(a) = &mut self.anchor {
            *a = map.to_new(*a);
        }
        match &mut self.translate {
            Some(t) => {
                for slot in t.iter_mut() {
                    *slot = map.to_new(*slot);
                }
            }
            None => self.translate = Some(map.old_to_new().to_vec()),
        }
    }
}

/// A fixed explicit seed list (useful in tests and for composing methods).
#[derive(Clone, Debug)]
pub struct StaticSeeds {
    ids: Vec<u32>,
}

impl StaticSeeds {
    /// Always returns `ids` as seeds.
    pub fn new(ids: Vec<u32>) -> Self {
        Self { ids }
    }
}

impl SeedProvider for StaticSeeds {
    fn seeds(&self, _space: Space<'_>, _query: &[f32], _count: usize, out: &mut Vec<u32>) {
        out.extend_from_slice(&self.ids);
    }

    fn label(&self) -> &'static str {
        "STATIC"
    }

    fn reorder(&mut self, map: &IdRemap) {
        for id in &mut self.ids {
            *id = map.to_new(*id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistCounter;
    use crate::store::VectorStore;

    fn tiny_space() -> (VectorStore, DistCounter) {
        let store = VectorStore::from_flat(1, (0..10).map(|i| i as f32).collect());
        (store, DistCounter::new())
    }

    #[test]
    fn fixed_seed_is_constant() {
        let (store, counter) = tiny_space();
        let space = Space::new(&store, &counter);
        let p = FixedSeed::random(10, 42);
        let mut a = Vec::new();
        let mut b = Vec::new();
        p.seeds(space, &[0.0], 5, &mut a);
        p.seeds(space, &[9.0], 5, &mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert!(a[0] < 10);
    }

    #[test]
    fn medoid_seed_points_to_center() {
        let (store, counter) = tiny_space();
        let space = Space::new(&store, &counter);
        let p = MedoidSeed::compute(space);
        // Centroid of 0..9 is 4.5; nearest points are 4/5 (tie -> first).
        assert!(p.medoid() == 4 || p.medoid() == 5);
        let mut out = Vec::new();
        p.seeds(space, &[0.0], 3, &mut out);
        assert_eq!(out, vec![p.medoid()]);
    }

    #[test]
    fn random_seeds_returns_requested_count() {
        let (store, counter) = tiny_space();
        let space = Space::new(&store, &counter);
        let p = RandomSeeds::new(10, 1);
        let mut out = Vec::new();
        p.seeds(space, &[0.0], 7, &mut out);
        assert_eq!(out.len(), 7);
        assert!(out.iter().all(|&s| s < 10));
    }

    #[test]
    fn random_seeds_vary_across_queries() {
        let (store, counter) = tiny_space();
        let space = Space::new(&store, &counter);
        let p = RandomSeeds::new(10, 1);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..8 {
            p.seeds(space, &[0.0], 4, &mut a);
            p.seeds(space, &[0.0], 4, &mut b);
        }
        assert_ne!(a, b, "independent draws should differ somewhere");
    }

    #[test]
    fn per_query_seeds_are_history_independent() {
        let (store, counter) = tiny_space();
        let space = Space::new(&store, &counter);
        let p = RandomSeeds::per_query(10, 1);
        let q = RandomSeeds::per_query(10, 1);
        // Advance `p` with unrelated traffic; a repeated query must still
        // get the same seeds a fresh provider gives it.
        let mut scratch = Vec::new();
        for i in 0..16 {
            p.seeds(space, &[i as f32], 4, &mut scratch);
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        p.seeds(space, &[3.5, -1.0], 4, &mut a);
        q.seeds(space, &[3.5, -1.0], 4, &mut b);
        assert_eq!(a, b, "same query must draw the same seeds");
        // Distinct queries should still draw differently somewhere.
        let mut c = Vec::new();
        q.seeds(space, &[3.5, -2.0], 4, &mut c);
        assert_ne!(b, c);
    }

    #[test]
    fn anchored_random_seeds_include_anchor() {
        let (store, counter) = tiny_space();
        let space = Space::new(&store, &counter);
        let p = RandomSeeds::with_anchor(10, 4, 1);
        let mut out = Vec::new();
        p.seeds(space, &[0.0], 3, &mut out);
        assert_eq!(out[0], 4);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn static_seeds_passthrough() {
        let (store, counter) = tiny_space();
        let space = Space::new(&store, &counter);
        let p = StaticSeeds::new(vec![1, 2, 3]);
        let mut out = Vec::new();
        p.seeds(space, &[0.0], 99, &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn reorder_translates_draws_not_the_stream() {
        // Two providers with the same RNG seed, one reordered: the
        // reordered one must emit the *relabeled* version of the exact
        // same draw sequence, so both select identical vectors.
        let (store, counter) = tiny_space();
        let space = Space::new(&store, &counter);
        let a = RandomSeeds::with_anchor(10, 4, 99);
        let mut b = RandomSeeds::with_anchor(10, 4, 99);
        let map = IdRemap::from_new_to_old((0..10u32).rev().collect()).unwrap();
        b.reorder(&map);
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        for _ in 0..4 {
            a.seeds(space, &[0.0], 6, &mut out_a);
            b.seeds(space, &[0.0], 6, &mut out_b);
        }
        let translated: Vec<u32> = out_a.iter().map(|&id| map.to_new(id)).collect();
        assert_eq!(out_b, translated);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FixedSeed::new(0).label(), "SF");
        assert_eq!(MedoidSeed::with_medoid(0).label(), "MD");
        assert_eq!(RandomSeeds::new(1, 0).label(), "KS");
    }
}
