//! The experiment workload catalogue: every dataset analog of the paper,
//! addressable by name, with a paired query sampler.

use crate::queries::{holdout_split, t2i_queries};
use crate::synth;
use gass_core::store::VectorStore;

/// One of the paper's datasets (synthetic analog).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DatasetKind {
    /// Deep1B analog (96-d, easy).
    Deep,
    /// Sift1B analog (128-d, easy-moderate).
    Sift,
    /// GIST1M analog (960-d).
    Gist,
    /// ImageNet1M analog (256-d, easiest).
    ImageNet,
    /// SALD analog (128-d series).
    Sald,
    /// Seismic analog (256-d series, hardest real dataset).
    Seismic,
    /// Text-to-Image analog (200-d, out-of-distribution queries).
    TextToImage,
    /// RandPow analog (256-d power-law with the given exponent:
    /// 0 = uniform, 5, 50 in the paper).
    RandPow(u32),
}

impl DatasetKind {
    /// The paper's name for the dataset.
    pub fn name(&self) -> String {
        match self {
            DatasetKind::Deep => "Deep".to_string(),
            DatasetKind::Sift => "Sift".to_string(),
            DatasetKind::Gist => "GIST".to_string(),
            DatasetKind::ImageNet => "ImageNet".to_string(),
            DatasetKind::Sald => "SALD".to_string(),
            DatasetKind::Seismic => "Seismic".to_string(),
            DatasetKind::TextToImage => "Text2Img".to_string(),
            DatasetKind::RandPow(a) => format!("RandPow{a}"),
        }
    }

    /// Ambient dimensionality of the analog.
    pub fn dim(&self) -> usize {
        match self {
            DatasetKind::Deep => 96,
            DatasetKind::Sift => 128,
            DatasetKind::Gist => 960,
            DatasetKind::ImageNet => 256,
            DatasetKind::Sald => 128,
            DatasetKind::Seismic => 256,
            DatasetKind::TextToImage => 200,
            DatasetKind::RandPow(_) => 256,
        }
    }

    /// All real-dataset analogs (the paper's Figure 12 roster).
    pub fn real_datasets() -> Vec<DatasetKind> {
        vec![
            DatasetKind::Deep,
            DatasetKind::Sift,
            DatasetKind::Gist,
            DatasetKind::ImageNet,
            DatasetKind::Sald,
            DatasetKind::Seismic,
            DatasetKind::TextToImage,
        ]
    }

    /// The power-law family (Figures 13e/13f).
    pub fn power_law_datasets() -> Vec<DatasetKind> {
        vec![DatasetKind::RandPow(0), DatasetKind::RandPow(5), DatasetKind::RandPow(50)]
    }

    /// Generates the base collection only.
    pub fn generate_base(&self, n: usize, seed: u64) -> VectorStore {
        match self {
            DatasetKind::Deep => synth::deep_like(n, seed),
            DatasetKind::Sift => synth::sift_like(n, seed),
            DatasetKind::Gist => synth::gist_like(n, seed),
            DatasetKind::ImageNet => synth::imagenet_like(n, seed),
            DatasetKind::Sald => synth::sald_like(n, seed),
            DatasetKind::Seismic => synth::seismic_like(n, seed),
            DatasetKind::TextToImage => synth::t2i_like(n, seed),
            DatasetKind::RandPow(a) => synth::rand_pow(n, *a as f64, seed),
        }
    }

    /// Generates `(base, queries)` following the paper's per-dataset query
    /// protocol: held-out dataset vectors for SALD/ImageNet/Seismic,
    /// fresh same-distribution draws for the embedding datasets, and a
    /// shifted distribution for Text-to-Image.
    pub fn generate(
        &self,
        n: usize,
        n_queries: usize,
        seed: u64,
    ) -> (VectorStore, VectorStore) {
        match self {
            DatasetKind::Sald | DatasetKind::ImageNet | DatasetKind::Seismic => {
                let full = self.generate_base(n + n_queries, seed);
                holdout_split(&full, n_queries, seed ^ 0x9e3779b97f4a7c15)
            }
            DatasetKind::TextToImage => {
                let base = self.generate_base(n, seed);
                let queries = t2i_queries(self.dim(), n_queries, seed ^ 0xabcdef);
                (base, queries)
            }
            _ => {
                let base = self.generate_base(n, seed);
                // Fresh draw from the same generator with a different seed
                // (the paper samples queries from the provided workloads).
                let queries_full = self.generate_base(n_queries.max(1), seed ^ 0x51f1);
                (base, queries_full)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dataset_generates_consistent_shapes() {
        for kind in
            DatasetKind::real_datasets().into_iter().chain(DatasetKind::power_law_datasets())
        {
            let n = if kind == DatasetKind::Gist { 20 } else { 60 };
            let (base, queries) = kind.generate(n, 5, 11);
            assert_eq!(base.dim(), kind.dim(), "{}", kind.name());
            assert_eq!(queries.dim(), kind.dim(), "{}", kind.name());
            assert_eq!(base.len(), n, "{}", kind.name());
            assert_eq!(queries.len(), 5, "{}", kind.name());
        }
    }

    #[test]
    fn names_are_paper_names() {
        assert_eq!(DatasetKind::Deep.name(), "Deep");
        assert_eq!(DatasetKind::RandPow(50).name(), "RandPow50");
        assert_eq!(DatasetKind::TextToImage.name(), "Text2Img");
    }

    #[test]
    fn holdout_datasets_exclude_queries_from_base() {
        let (base, queries) = DatasetKind::Seismic.generate(50, 5, 3);
        for (_, q) in queries.iter() {
            assert!(!base.iter().any(|(_, b)| b == q));
        }
    }
}
