//! The wire protocol: length-prefixed fixed binary frames.
//!
//! The workspace builds offline (no serde-json, no HTTP stack), so the
//! service speaks the simplest protocol that is still robust: every
//! message is one frame, `[u32 len][payload]` with all integers
//! little-endian, and the payload layouts below are fixed — no
//! self-describing encoding to parse, no allocation beyond the payload
//! buffer. Request and response encoders/decoders are symmetric and
//! round-trip-tested, and both the server and the [`crate::client`] use
//! exactly these functions, so the tests cover the real wire format.
//!
//! ## Request payloads
//!
//! | opcode | layout |
//! |---|---|
//! | `1` Query | `u16 k, u16 seed_count, u32 beam_width, u32 rerank_factor, u32 deadline_us, u32 dim, dim × f32` |
//! | `2` Stats | — |
//! | `3` Ping | — |
//! | `4` Shutdown | — |
//!
//! `deadline_us = 0` means "no deadline"; otherwise the request is
//! answered `DeadlineExceeded` (without searching) once that many
//! microseconds have elapsed since the server parsed it.
//!
//! ## Response payloads
//!
//! First byte is a status code. `0` (`Ok`) is followed by a
//! variant-specific body: query responses carry
//! `u32 count, count × (u32 id, f32 dist)`, stats responses carry
//! `u32 len, len × u8` of JSON text, ping/shutdown acks are empty.
//! Non-zero statuses (`1` Overloaded, `2` DeadlineExceeded,
//! `3` BadRequest, `4` ShuttingDown) carry `u32 len, len × u8` of
//! human-readable detail.

use std::io::{self, Read, Write};

/// Hard cap on frame payloads (16 MiB): a corrupt or hostile length
/// prefix must not trigger an unbounded allocation.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// A parsed request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// One k-NN query.
    Query(QueryRequest),
    /// Serving statistics as JSON.
    Stats,
    /// Liveness probe.
    Ping,
    /// Orderly server shutdown.
    Shutdown,
}

/// The payload of a [`Request::Query`].
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRequest {
    /// Number of neighbors to return.
    pub k: usize,
    /// Beam width `L`.
    pub beam_width: usize,
    /// Seeds requested from the index's seed provider.
    pub seed_count: usize,
    /// Exact-rerank pool multiplier (quantized serving).
    pub rerank_factor: usize,
    /// Per-request deadline in microseconds since server receipt
    /// (0 = none).
    pub deadline_us: u32,
    /// The query vector.
    pub query: Vec<f32>,
}

/// Response status byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Request served.
    Ok = 0,
    /// Admission control rejected the request (queue full).
    Overloaded = 1,
    /// The request's deadline passed before a worker reached it.
    DeadlineExceeded = 2,
    /// Malformed or invalid request (e.g. dimension mismatch).
    BadRequest = 3,
    /// The server is draining; no new queries are admitted.
    ShuttingDown = 4,
}

impl Status {
    fn from_u8(b: u8) -> Option<Status> {
        Some(match b {
            0 => Status::Ok,
            1 => Status::Overloaded,
            2 => Status::DeadlineExceeded,
            3 => Status::BadRequest,
            4 => Status::ShuttingDown,
            _ => return None,
        })
    }
}

/// A parsed response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Query answered: `(id, distance)` pairs, closest first. Distances
    /// are exact (the serving path reranks at full precision).
    Neighbors(Vec<(u32, f32)>),
    /// Stats snapshot (JSON text).
    Stats(String),
    /// Ping acknowledged.
    Pong,
    /// Shutdown acknowledged; the server drains and exits.
    ShutdownAck,
    /// Request rejected; `status` is never [`Status::Ok`].
    Rejected {
        /// Why the request was rejected.
        status: Status,
        /// Human-readable detail.
        detail: String,
    },
}

const OP_QUERY: u8 = 1;
const OP_STATS: u8 = 2;
const OP_PING: u8 = 3;
const OP_SHUTDOWN: u8 = 4;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes one `[u32 len][payload]` frame and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    queue_frame(w, payload)?;
    w.flush()
}

/// Writes one frame *without* flushing: callers batching several frames
/// (the server's per-connection writer, pipelined load generators) queue
/// them all into a buffered writer and pay one flush syscall for the lot.
pub fn queue_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_BYTES);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame's payload. `Ok(None)` on clean EOF at a frame
/// boundary (the peer closed the connection).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(bad(format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES} cap")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Encodes a request payload (pair with [`write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Stats => vec![OP_STATS],
        Request::Ping => vec![OP_PING],
        Request::Shutdown => vec![OP_SHUTDOWN],
        Request::Query(q) => {
            let mut out = Vec::with_capacity(1 + 16 + 4 + 4 * q.query.len());
            out.push(OP_QUERY);
            out.extend_from_slice(&(q.k as u16).to_le_bytes());
            out.extend_from_slice(&(q.seed_count as u16).to_le_bytes());
            out.extend_from_slice(&(q.beam_width as u32).to_le_bytes());
            out.extend_from_slice(&(q.rerank_factor as u32).to_le_bytes());
            out.extend_from_slice(&q.deadline_us.to_le_bytes());
            out.extend_from_slice(&(q.query.len() as u32).to_le_bytes());
            for v in &q.query {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out
        }
    }
}

struct Cursor<'a>(&'a [u8]);

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> io::Result<&[u8]> {
        if self.0.len() < n {
            return Err(bad("truncated payload"));
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn finish(&self) -> io::Result<()> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(bad(format!("{} trailing bytes in payload", self.0.len())))
        }
    }
}

/// Decodes a request payload (the server side of [`encode_request`]).
pub fn decode_request(payload: &[u8]) -> io::Result<Request> {
    let mut c = Cursor(payload);
    let op = c.take(1)?[0];
    let req = match op {
        OP_STATS => Request::Stats,
        OP_PING => Request::Ping,
        OP_SHUTDOWN => Request::Shutdown,
        OP_QUERY => {
            let k = c.u16()? as usize;
            let seed_count = c.u16()? as usize;
            let beam_width = c.u32()? as usize;
            let rerank_factor = c.u32()? as usize;
            let deadline_us = c.u32()?;
            let dim = c.u32()? as usize;
            if dim.saturating_mul(4) > payload.len() {
                return Err(bad(format!("query dim {dim} larger than the payload")));
            }
            let mut query = Vec::with_capacity(dim);
            for _ in 0..dim {
                query.push(c.f32()?);
            }
            Request::Query(QueryRequest {
                k,
                beam_width,
                seed_count,
                rerank_factor,
                deadline_us,
                query,
            })
        }
        other => return Err(bad(format!("unknown opcode {other}"))),
    };
    c.finish()?;
    Ok(req)
}

fn push_text(out: &mut Vec<u8>, text: &str) {
    out.extend_from_slice(&(text.len() as u32).to_le_bytes());
    out.extend_from_slice(text.as_bytes());
}

/// Encodes a response payload (pair with [`write_frame`]).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Pong => vec![Status::Ok as u8, b'p'],
        Response::ShutdownAck => vec![Status::Ok as u8, b's'],
        Response::Neighbors(ns) => {
            let mut out = Vec::with_capacity(2 + 4 + 8 * ns.len());
            out.push(Status::Ok as u8);
            out.push(b'q');
            out.extend_from_slice(&(ns.len() as u32).to_le_bytes());
            for (id, dist) in ns {
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&dist.to_le_bytes());
            }
            out
        }
        Response::Stats(json) => {
            let mut out = Vec::with_capacity(2 + 4 + json.len());
            out.push(Status::Ok as u8);
            out.push(b't');
            push_text(&mut out, json);
            out
        }
        Response::Rejected { status, detail } => {
            debug_assert!(*status != Status::Ok);
            let mut out = Vec::with_capacity(1 + 4 + detail.len());
            out.push(*status as u8);
            push_text(&mut out, detail);
            out
        }
    }
}

/// Decodes a response payload (the client side of [`encode_response`]).
pub fn decode_response(payload: &[u8]) -> io::Result<Response> {
    let mut c = Cursor(payload);
    let status = Status::from_u8(c.take(1)?[0]).ok_or_else(|| bad("unknown status byte"))?;
    if status != Status::Ok {
        let len = c.u32()? as usize;
        let detail = String::from_utf8(c.take(len)?.to_vec())
            .map_err(|_| bad("rejection detail is not UTF-8"))?;
        c.finish()?;
        return Ok(Response::Rejected { status, detail });
    }
    let tag = c.take(1)?[0];
    let resp = match tag {
        b'p' => Response::Pong,
        b's' => Response::ShutdownAck,
        b'q' => {
            let count = c.u32()? as usize;
            if count.saturating_mul(8) > payload.len() {
                return Err(bad(format!("{count} neighbors larger than the payload")));
            }
            let mut ns = Vec::with_capacity(count);
            for _ in 0..count {
                let id = c.u32()?;
                let dist = c.f32()?;
                ns.push((id, dist));
            }
            Response::Neighbors(ns)
        }
        b't' => {
            let len = c.u32()? as usize;
            let json = String::from_utf8(c.take(len)?.to_vec())
                .map_err(|_| bad("stats payload is not UTF-8"))?;
            Response::Stats(json)
        }
        other => return Err(bad(format!("unknown ok-variant tag {other}"))),
    };
    c.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let payload = encode_request(&req);
        assert_eq!(decode_request(&payload).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let payload = encode_response(&resp);
        assert_eq!(decode_response(&payload).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Stats);
        round_trip_request(Request::Ping);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Query(QueryRequest {
            k: 10,
            beam_width: 80,
            seed_count: 16,
            rerank_factor: 4,
            deadline_us: 5_000,
            query: vec![1.5, -2.25, 0.0, f32::MIN_POSITIVE],
        }));
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Pong);
        round_trip_response(Response::ShutdownAck);
        round_trip_response(Response::Neighbors(vec![(3, 0.25), (9, 1.75)]));
        round_trip_response(Response::Neighbors(vec![]));
        round_trip_response(Response::Stats("{\"qps\":123.0}".to_string()));
        round_trip_response(Response::Rejected {
            status: Status::Overloaded,
            detail: "queue full (depth 1024)".to_string(),
        });
        round_trip_response(Response::Rejected {
            status: Status::DeadlineExceeded,
            detail: String::new(),
        });
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let mut buf = Vec::new();
        let payload = encode_request(&Request::Ping);
        write_frame(&mut buf, &payload).unwrap();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), payload);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), payload);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected_not_allocated() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let mut payload = encode_request(&Request::Query(QueryRequest {
            k: 1,
            beam_width: 2,
            seed_count: 3,
            rerank_factor: 4,
            deadline_us: 0,
            query: vec![1.0, 2.0],
        }));
        payload.pop();
        assert!(decode_request(&payload).is_err(), "truncated");
        let mut payload = encode_request(&Request::Ping);
        payload.push(0);
        assert!(decode_request(&payload).is_err(), "trailing");
        assert!(decode_request(&[99]).is_err(), "unknown opcode");
        assert!(decode_response(&[77]).is_err(), "unknown status");
    }

    #[test]
    fn hostile_lengths_do_not_overallocate() {
        // A query claiming 2^31 dims in a tiny payload must fail fast.
        let mut payload = vec![OP_QUERY];
        payload.extend_from_slice(&1u16.to_le_bytes());
        payload.extend_from_slice(&1u16.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&(1u32 << 31).to_le_bytes());
        assert!(decode_request(&payload).is_err());
    }
}
