//! Beam-search engine micro-benchmarks: linear-buffer vs two-heap queues
//! and flat vs adjacency-list graph layouts (Figure 17's micro level),
//! plus the visited-set trick vs a HashSet.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gass_bench::beam_search_two_heaps;
use gass_core::distance::{DistCounter, Space};
use gass_core::graph::{AdjacencyGraph, FlatGraph, GraphView};
use gass_core::search::{beam_search, SearchScratch};
use gass_core::visited::VisitedSet;
use gass_data::synth::deep_like;
use gass_graphs::{HnswIndex, HnswParams};
use std::hint::black_box;

fn bench_beam(c: &mut Criterion) {
    let n = 5_000;
    let base = deep_like(n, 1);
    let queries = deep_like(16, 2);
    let index = HnswIndex::build(
        base.clone(),
        HnswParams { m: 12, ef_construction: 64, seed: 3, threads: 1 },
    );
    let flat: &FlatGraph = index.base_graph();
    let mut lists = AdjacencyGraph::new(n);
    for u in 0..n as u32 {
        lists.set_neighbors(u, flat.neighbors(u).to_vec());
    }
    let counter = DistCounter::new();
    let space = Space::new(index.store(), &counter);
    let mut scratch = SearchScratch::new(n, 64);
    let mut visited = VisitedSet::new(n);

    let mut group = c.benchmark_group("beam_search");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for l in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("flat_linear", l), &l, |b, &l| {
            b.iter(|| {
                for (_, q) in queries.iter() {
                    black_box(beam_search(flat, space, q, &[0], 10, l, &mut scratch));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("lists_linear", l), &l, |b, &l| {
            b.iter(|| {
                for (_, q) in queries.iter() {
                    black_box(beam_search(&lists, space, q, &[0], 10, l, &mut scratch));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("flat_two_heaps", l), &l, |b, &l| {
            b.iter(|| {
                for (_, q) in queries.iter() {
                    black_box(beam_search_two_heaps(flat, space, q, &[0], 10, l, &mut visited));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_beam);
criterion_main!(benches);
