//! Distance kernels and the distance-call accounting used throughout the
//! evaluation.
//!
//! The paper measures efficiency primarily in **number of distance
//! calculations**, a machine-independent proxy for work. Every search and
//! construction routine in this workspace therefore funnels its distance
//! evaluations through a [`DistCounter`] so experiments can report the exact
//! figure.
//!
//! All graph methods in the paper use the Euclidean distance; we compute the
//! *squared* Euclidean distance internally (monotone in the true distance,
//! one `sqrt` cheaper) and take square roots only at reporting boundaries
//! (e.g. LID/LRC estimation).

use crate::store::VectorStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Squared Euclidean distance between two equal-length slices.
///
/// Manually unrolled into four accumulator lanes; with `opt-level=3` the
/// compiler vectorizes this into SIMD on x86-64 and aarch64. The unrolling
/// matters: a single-accumulator loop is serialized on the FP add latency.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            let d = a[base + lane] - b[base + lane];
            acc[lane] += d * d;
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Squared Euclidean distance from one query to **four** stored vectors at
/// once — the beam-search neighbor loop's batched kernel.
///
/// Evaluating four candidates per call gives the compiler sixteen
/// independent accumulation chains (vs. four in [`l2_sq`]) and reuses each
/// loaded query chunk across all four vectors. Per vector the arithmetic —
/// lane split, accumulation order, remainder handling — is exactly
/// [`l2_sq`]'s, so results are bit-identical to four separate calls.
#[inline]
pub fn l2_sq_batch(query: &[f32], vs: [&[f32]; 4]) -> [f32; 4] {
    for v in vs {
        debug_assert_eq!(query.len(), v.len());
    }
    let mut acc = [[0.0f32; 4]; 4];
    let chunks = query.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for (v, vec) in vs.iter().enumerate() {
            for lane in 0..4 {
                let d = query[base + lane] - vec[base + lane];
                acc[v][lane] += d * d;
            }
        }
    }
    let mut out = [0.0f32; 4];
    for (v, vec) in vs.iter().enumerate() {
        let mut sum = acc[v][0] + acc[v][1] + acc[v][2] + acc[v][3];
        for i in chunks * 4..query.len() {
            let d = query[i] - vec[i];
            sum += d * d;
        }
        out[v] = sum;
    }
    out
}

/// Euclidean distance (`sqrt` of [`l2_sq`]).
#[inline]
pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    l2_sq(a, b).sqrt()
}

/// Inner product of two equal-length slices (four-lane unrolled).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            acc[lane] += a[base + lane] * b[base + lane];
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Squared L2 norm.
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    dot(a, a)
}

/// Cosine *distance* (1 − cosine similarity). Zero vectors are treated as
/// maximally distant.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let na = norm_sq(a).sqrt();
    let nb = norm_sq(b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot(a, b) / (na * nb)
}

/// Shared, thread-safe counter of distance evaluations.
///
/// Cloning is cheap (an `Arc` bump); clones observe the same count, which is
/// what parallel index construction needs. Counting uses relaxed atomics —
/// the total is read only after the workload quiesces.
#[derive(Clone, Debug, Default)]
pub struct DistCounter(Arc<AtomicU64>);

impl DistCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` distance evaluations.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a single distance evaluation.
    #[inline]
    pub fn bump(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets the total to zero (between experiment phases).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A vector store paired with a distance counter: the "space" every search
/// and construction routine runs in.
///
/// This is deliberately a borrow-holding view rather than an owning struct:
/// methods keep their own `VectorStore` and create `Space` views per phase
/// so each phase gets its own accounting.
#[derive(Clone, Copy)]
pub struct Space<'a> {
    store: &'a VectorStore,
    counter: &'a DistCounter,
}

impl<'a> Space<'a> {
    /// Wraps a store and counter.
    pub fn new(store: &'a VectorStore, counter: &'a DistCounter) -> Self {
        Self { store, counter }
    }

    /// The underlying store.
    #[inline]
    pub fn store(&self) -> &'a VectorStore {
        self.store
    }

    /// The distance counter.
    #[inline]
    pub fn counter(&self) -> &'a DistCounter {
        self.counter
    }

    /// Number of vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` when the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.store.dim()
    }

    /// Counted squared distance between stored vectors `i` and `j`.
    #[inline]
    pub fn dist(&self, i: u32, j: u32) -> f32 {
        self.counter.bump();
        l2_sq(self.store.get(i), self.store.get(j))
    }

    /// Counted squared distance between an external query and stored
    /// vector `i`.
    #[inline]
    pub fn dist_to(&self, query: &[f32], i: u32) -> f32 {
        self.counter.bump();
        l2_sq(query, self.store.get(i))
    }

    /// Counted squared distances from `query` to four stored vectors at
    /// once (see [`l2_sq_batch`]). Counts four evaluations.
    #[inline]
    pub fn dist_to_batch(&self, query: &[f32], ids: [u32; 4]) -> [f32; 4] {
        self.counter.add(4);
        l2_sq_batch(
            query,
            [
                self.store.get(ids[0]),
                self.store.get(ids[1]),
                self.store.get(ids[2]),
                self.store.get(ids[3]),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_sq_matches_naive() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..13).map(|i| (13 - i) as f32 * 0.25).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!((l2_sq(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn l2_sq_zero_for_identical() {
        let a = vec![1.5f32; 9];
        assert_eq!(l2_sq(&a, &a), 0.0);
    }

    #[test]
    fn l2_sq_batch_is_bit_identical_to_l2_sq() {
        // Awkward dimension (13) exercises the remainder path too.
        for dim in [1usize, 4, 13, 96] {
            let q: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.7).sin()).collect();
            let vs: Vec<Vec<f32>> = (0..4)
                .map(|v| (0..dim).map(|i| ((i + v * 31) as f32 * 0.3).cos()).collect())
                .collect();
            let batch = l2_sq_batch(&q, [&vs[0], &vs[1], &vs[2], &vs[3]]);
            for v in 0..4 {
                assert_eq!(
                    batch[v].to_bits(),
                    l2_sq(&q, &vs[v]).to_bits(),
                    "dim={dim} vector={v}"
                );
            }
        }
    }

    #[test]
    fn dist_to_batch_counts_four() {
        let store = VectorStore::from_flat(2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let ds = space.dist_to_batch(&[0.0, 0.0], [0, 1, 2, 3]);
        assert_eq!(counter.get(), 4);
        assert_eq!(ds, [0.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn l2_is_sqrt_of_l2_sq() {
        let a = [3.0f32, 0.0];
        let b = [0.0f32, 4.0];
        assert!((l2(&a, &b) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (1..=10).map(|i| i as f32).collect();
        let b: Vec<f32> = (1..=10).map(|i| (i * 2) as f32).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn cosine_distance_bounds() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        assert!((cosine_distance(&a, &a)).abs() < 1e-6);
        assert!((cosine_distance(&a, &b) - 1.0).abs() < 1e-6);
        let c = [-1.0f32, 0.0];
        assert!((cosine_distance(&a, &c) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_distance_zero_vector() {
        let z = [0.0f32, 0.0];
        let a = [1.0f32, 0.0];
        assert_eq!(cosine_distance(&z, &a), 1.0);
    }

    #[test]
    fn counter_accumulates_across_clones() {
        let c = DistCounter::new();
        let c2 = c.clone();
        c.add(3);
        c2.bump();
        assert_eq!(c.get(), 4);
        c.reset();
        assert_eq!(c2.get(), 0);
    }

    #[test]
    fn space_counts_every_call() {
        let store = VectorStore::from_flat(2, vec![0.0, 0.0, 3.0, 4.0]);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        assert!((space.dist(0, 1) - 25.0).abs() < 1e-6);
        assert!((space.dist_to(&[0.0, 0.0], 1) - 25.0).abs() < 1e-6);
        assert_eq!(counter.get(), 2);
    }
}
