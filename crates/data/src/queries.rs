//! Query-workload construction, mirroring Section 4.1 of the paper.
//!
//! * For embedding datasets the paper samples queries from a provided
//!   query workload; our analogs regenerate from the same distribution
//!   with a different RNG seed ([`fresh_queries`] via the generator).
//! * For SALD/ImageNet/Seismic the paper samples 100 vectors from the
//!   dataset and *excludes them from index building* —
//!   [`holdout_split`].
//! * Hardness workloads (Figure 15) add Gaussian noise with `σ²` from
//!   0.01 ("1%") to 0.1 ("10%") to randomly chosen dataset vectors —
//!   [`noisy_queries`].
//! * Text-to-Image queries come from a *shifted* (cross-modal)
//!   distribution — [`t2i_queries`].

use crate::util::{fill_gaussian, gaussian};
use gass_core::store::VectorStore;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Removes `count` random vectors from `store` and returns
/// `(base, queries)`: the paper's held-out protocol for SALD, ImageNet and
/// Seismic.
///
/// # Panics
/// Panics if `count >= store.len()`.
pub fn holdout_split(
    store: &VectorStore,
    count: usize,
    seed: u64,
) -> (VectorStore, VectorStore) {
    assert!(count < store.len(), "cannot hold out the entire dataset");
    let mut ids: Vec<u32> = (0..store.len() as u32).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    let (q_ids, base_ids) = ids.split_at(count);
    let mut q_sorted = q_ids.to_vec();
    let mut b_sorted = base_ids.to_vec();
    q_sorted.sort_unstable();
    b_sorted.sort_unstable();
    (store.subset(&b_sorted), store.subset(&q_sorted))
}

/// Hardness workload: `count` queries obtained by adding `N(0, σ²)` noise
/// to random dataset vectors. The paper's "1%"–"10%" query sets use
/// `σ² = 0.01 … 0.1` (applied after scaling noise to the data's own
/// per-coordinate spread so the percentage is meaningful across analogs).
pub fn noisy_queries(store: &VectorStore, count: usize, sigma2: f32, seed: u64) -> VectorStore {
    assert!(!store.is_empty(), "noisy queries from an empty store");
    let mut rng = SmallRng::seed_from_u64(seed);
    let dim = store.dim();
    // Per-dataset scale: RMS of coordinates, so σ is relative to data
    // magnitude (the paper's datasets are normalized; analogs are not all).
    let sum_sq: f64 = store.iter().flat_map(|(_, row)| row).map(|x| (x * x) as f64).sum();
    let rms = (sum_sq / (store.len() * dim) as f64).sqrt() as f32;
    let sigma = sigma2.sqrt() * rms.max(1e-6);
    let mut queries = VectorStore::with_capacity(dim, count);
    let mut q = vec![0.0f32; dim];
    for _ in 0..count {
        let id = rng.random_range(0..store.len() as u32);
        let v = store.get(id);
        for (out, x) in q.iter_mut().zip(v) {
            *out = x + gaussian(&mut rng) * sigma;
        }
        queries.push(&q);
    }
    queries
}

/// Text-to-Image-style out-of-distribution queries: same ambient space as
/// [`crate::synth::t2i_like`], but drawn from a distribution shifted by a
/// random offset and with different per-coordinate scaling — modeling the
/// text-tower vs image-tower domain gap.
pub fn t2i_queries(dim: usize, count: usize, seed: u64) -> VectorStore {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut offset = vec![0.0f32; dim];
    fill_gaussian(&mut rng, &mut offset);
    for o in offset.iter_mut() {
        *o *= 0.8;
    }
    let mut queries = VectorStore::with_capacity(dim, count);
    let mut q = vec![0.0f32; dim];
    for _ in 0..count {
        for (out, o) in q.iter_mut().zip(&offset) {
            *out = o + gaussian(&mut rng) * 1.5;
        }
        queries.push(&q);
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{deep_like, t2i_like};

    #[test]
    fn holdout_preserves_totals_and_disjointness() {
        let store = deep_like(100, 1);
        let (base, queries) = holdout_split(&store, 10, 2);
        assert_eq!(base.len(), 90);
        assert_eq!(queries.len(), 10);
        // No query vector appears in the base (vectors are continuous, so
        // exact equality identifies membership).
        for (_, q) in queries.iter() {
            assert!(
                !base.iter().any(|(_, b)| b == q),
                "held-out query leaked into the base set"
            );
        }
    }

    #[test]
    fn holdout_is_deterministic() {
        let store = deep_like(50, 3);
        let (_, q1) = holdout_split(&store, 5, 9);
        let (_, q2) = holdout_split(&store, 5, 9);
        assert_eq!(q1.as_flat(), q2.as_flat());
    }

    #[test]
    fn noisy_queries_stay_near_their_source() {
        let store = deep_like(200, 4);
        let q_low = noisy_queries(&store, 20, 0.01, 5);
        let q_high = noisy_queries(&store, 20, 0.1, 5);
        // Same seed => same source vectors; higher sigma => farther from
        // the dataset on average.
        let nn_dist = |queries: &VectorStore| -> f64 {
            let mut total = 0.0f64;
            for (_, q) in queries.iter() {
                let mut best = f32::INFINITY;
                for (_, v) in store.iter() {
                    best = best.min(gass_core::l2_sq(q, v));
                }
                total += best as f64;
            }
            total / queries.len() as f64
        };
        let low = nn_dist(&q_low);
        let high = nn_dist(&q_high);
        assert!(low < high, "1% noise ({low}) should sit closer than 10% ({high})");
        assert!(low > 0.0, "noise must move queries off the data");
    }

    #[test]
    fn t2i_queries_are_shifted_from_base() {
        let base = t2i_like(300, 6);
        let queries = t2i_queries(200, 50, 7);
        assert_eq!(queries.dim(), 200);
        // Mean of queries differs from mean of base noticeably (domain
        // shift).
        let mean = |s: &VectorStore| -> Vec<f32> {
            let mut m = vec![0.0f32; s.dim()];
            for (_, v) in s.iter() {
                for (a, b) in m.iter_mut().zip(v) {
                    *a += b;
                }
            }
            for a in m.iter_mut() {
                *a /= s.len() as f32;
            }
            m
        };
        let mb = mean(&base);
        let mq = mean(&queries);
        let gap = gass_core::l2_sq(&mb, &mq);
        assert!(gap > 1.0, "distribution shift too small: {gap}");
    }
}
