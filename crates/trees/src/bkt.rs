//! Balanced K-means Trees (BKT) — SPTAG-BKT's seed-selection structure
//! (**KM** in the paper's taxonomy).
//!
//! Each internal node clusters its point set with balanced k-means into
//! `branching` children (each holding a centroid); leaves keep the raw
//! ids. Seed retrieval descends best-first by query→centroid distance,
//! which *does* cost counted distance evaluations — part of why KM's
//! seed-selection overhead shows up in the paper's measurements.

use crate::kmeans::balanced_kmeans;
use gass_core::distance::{l2_sq, Space};
use gass_core::reorder::IdRemap;
use gass_core::seed::SeedProvider;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

#[derive(Clone, Debug)]
enum Node {
    Internal { children: Vec<(Vec<f32>, u32)> }, // (centroid, child index)
    Leaf { ids: Vec<u32> },
}

/// A balanced k-means tree over all vectors of a store.
#[derive(Clone, Debug)]
pub struct BkTree {
    nodes: Vec<Node>,
    root: u32,
}

impl BkTree {
    /// Builds the tree with the given branching factor and leaf size.
    /// Clustering distance evaluations are counted through `space`.
    ///
    /// # Panics
    /// Panics if the store is empty, `branching < 2`, or `leaf_size == 0`.
    pub fn build(space: Space<'_>, branching: usize, leaf_size: usize, seed: u64) -> Self {
        assert!(!space.is_empty(), "BKT over empty store");
        assert!(branching >= 2, "branching factor must be at least 2");
        assert!(leaf_size > 0, "leaf size must be positive");
        let ids: Vec<u32> = (0..space.len() as u32).collect();
        let mut tree = Self { nodes: Vec::new(), root: 0 };
        let mut rng = SmallRng::seed_from_u64(seed);
        tree.root = tree.build_rec(space, ids, branching, leaf_size, &mut rng);
        tree
    }

    fn build_rec(
        &mut self,
        space: Space<'_>,
        ids: Vec<u32>,
        branching: usize,
        leaf_size: usize,
        rng: &mut SmallRng,
    ) -> u32 {
        if ids.len() <= leaf_size {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node::Leaf { ids });
            return idx;
        }
        let clustering =
            balanced_kmeans(space, &ids, branching, 4, rng.random_range(0..u64::MAX));
        let groups = clustering.groups(&ids);
        let mut children = Vec::with_capacity(branching);
        for (c, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            // Degenerate clustering (all points in one group) would recurse
            // forever; fall back to a leaf.
            if group.len() == ids.len() {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node::Leaf { ids: group });
                return idx;
            }
            let child = self.build_rec(space, group, branching, leaf_size, rng);
            children.push((clustering.centroids[c].clone(), child));
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node::Internal { children });
        idx
    }

    /// Collects up to `budget` candidate ids by best-first centroid
    /// descent; centroid distances are counted through `space`.
    pub fn candidates(
        &self,
        space: Space<'_>,
        query: &[f32],
        budget: usize,
        out: &mut Vec<u32>,
    ) {
        let mut frontier: Vec<(f32, u32)> = vec![(0.0, self.root)];
        while !frontier.is_empty() {
            let mut best = 0;
            for i in 1..frontier.len() {
                if frontier[i].0 < frontier[best].0 {
                    best = i;
                }
            }
            let (_, node) = frontier.swap_remove(best);
            match &self.nodes[node as usize] {
                Node::Leaf { ids } => {
                    out.extend_from_slice(ids);
                    if out.len() >= budget {
                        return;
                    }
                }
                Node::Internal { children } => {
                    for (centroid, child) in children {
                        space.counter().bump();
                        let d = l2_sq(query, centroid);
                        frontier.push((d, *child));
                    }
                }
            }
        }
    }

    /// Relabels the leaf ids through `map` after the vector store was
    /// permuted. Centroids are raw vectors (no ids), so the counted
    /// descent is unchanged.
    pub fn reorder(&mut self, map: &IdRemap) {
        for node in &mut self.nodes {
            if let Node::Leaf { ids } = node {
                for id in ids.iter_mut() {
                    *id = map.to_new(*id);
                }
            }
        }
    }

    /// Approximate heap bytes (centroids + leaf id lists + node vector).
    pub fn heap_bytes(&self) -> usize {
        let inner: usize = self
            .nodes
            .iter()
            .map(|n| match n {
                Node::Internal { children } => children
                    .iter()
                    .map(|(c, _)| c.capacity() * std::mem::size_of::<f32>() + 4)
                    .sum(),
                Node::Leaf { ids } => ids.capacity() * std::mem::size_of::<u32>(),
            })
            .sum();
        inner + self.nodes.capacity() * std::mem::size_of::<Node>()
    }
}

/// BKT seed provider (**KM** strategy, SPTAG-BKT).
#[derive(Clone, Debug)]
pub struct BktSeeds {
    tree: BkTree,
    /// After a reorder: `new → old` table used as the sort key so the
    /// truncated seed set is identical before and after relabeling.
    orig: Option<Vec<u32>>,
}

impl BktSeeds {
    /// Builds the BKT seed structure over `space`'s store.
    pub fn build(space: Space<'_>, branching: usize, leaf_size: usize, seed: u64) -> Self {
        Self { tree: BkTree::build(space, branching, leaf_size, seed), orig: None }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &BkTree {
        &self.tree
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.tree.heap_bytes()
    }
}

impl SeedProvider for BktSeeds {
    fn seeds(&self, space: Space<'_>, query: &[f32], count: usize, out: &mut Vec<u32>) {
        self.tree.candidates(space, query, count.max(1), out);
        match &self.orig {
            Some(orig) => out.sort_unstable_by_key(|&id| orig[id as usize]),
            None => out.sort_unstable(),
        }
        out.dedup();
        out.truncate(count.max(1));
    }

    fn label(&self) -> &'static str {
        "KM"
    }

    fn reorder(&mut self, map: &IdRemap) {
        self.tree.reorder(map);
        self.orig = Some(match self.orig.take() {
            Some(prev) => {
                (0..prev.len()).map(|id| prev[map.to_old(id as u32) as usize]).collect()
            }
            None => map.new_to_old().to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::distance::DistCounter;
    use gass_core::store::VectorStore;

    fn clustered_store(seed: u64) -> VectorStore {
        // 4 well-separated 3-d blobs of 30 points.
        let mut rng = SmallRng::seed_from_u64(seed);
        let centers = [[0.0, 0.0, 0.0], [20.0, 0.0, 0.0], [0.0, 20.0, 0.0], [0.0, 0.0, 20.0]];
        let mut s = VectorStore::new(3);
        for c in centers {
            for _ in 0..30 {
                let v: Vec<f32> =
                    c.iter().map(|x| x + rng.random_range(-0.5..0.5f32)).collect();
                s.push(&v);
            }
        }
        s
    }

    #[test]
    fn all_ids_reachable() {
        let store = clustered_store(1);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let tree = BkTree::build(space, 4, 10, 2);
        let mut out = Vec::new();
        tree.candidates(space, &[0.0; 3], usize::MAX, &mut out);
        out.sort_unstable();
        let expected: Vec<u32> = (0..120).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn descent_reaches_correct_blob() {
        let store = clustered_store(3);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let tree = BkTree::build(space, 4, 10, 4);
        counter.reset();
        let mut out = Vec::new();
        // Query near blob 1 (ids 30..60).
        tree.candidates(space, &[20.0, 0.1, -0.1], 10, &mut out);
        assert!(!out.is_empty());
        let hits = out.iter().filter(|&&id| (30..60).contains(&id)).count();
        assert!(
            hits * 2 >= out.len(),
            "most candidates should come from the nearest blob; got {hits}/{}",
            out.len()
        );
        assert!(counter.get() > 0, "centroid descent must be counted");
    }

    #[test]
    fn seed_provider_contract() {
        let store = clustered_store(5);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let seeds = BktSeeds::build(space, 3, 8, 6);
        let mut out = Vec::new();
        seeds.seeds(space, &[0.0; 3], 5, &mut out);
        assert!(out.len() <= 5);
        assert!(!out.is_empty());
        assert_eq!(seeds.label(), "KM");
    }

    #[test]
    fn identical_points_build_terminates() {
        let mut s = VectorStore::new(2);
        for _ in 0..40 {
            s.push(&[1.0, 1.0]);
        }
        let counter = DistCounter::new();
        let space = Space::new(&s, &counter);
        let tree = BkTree::build(space, 4, 8, 7);
        let mut out = Vec::new();
        tree.candidates(space, &[1.0, 1.0], usize::MAX, &mut out);
        assert_eq!(out.len(), 40);
    }
}
