//! Figure 10: memory footprint during *query answering* — what must stay
//! resident to serve searches (raw vectors + graph + seed structures +
//! per-thread scratch), measured in the full serving configuration:
//! frozen CSR, quantized codes, and (under `GASS_REORDER`) the id remap.
//!
//! Paper shape: Vamana smallest (graph + data only, modest degree), ELPIS
//! next (small leaf graphs but duplicated contiguous leaf storage), HNSW
//! pays for slotted layout + hierarchy. The `of_which_serving` column
//! isolates what freezing + quantization (+ reordering) add on top of the
//! build-time structures; each method gets one row per codec ladder rung
//! (SQ8 / SQ4 / PQ) so the ladder's shrinking code store is visible per
//! method.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig10_query_memory
//! ```

use gass_bench::{results_dir, small_tiers};
use gass_data::DatasetKind;
use gass_eval::{fmt_bytes, Table};
use gass_graphs::{build_method, MethodKind};

fn main() {
    let mut table = Table::new(vec![
        "tier",
        "method",
        "codec",
        "resident_total",
        "of_which_graph",
        "of_which_aux",
        "of_which_serving",
        "scratch_per_thread",
    ]);

    for tier in small_tiers() {
        let base = DatasetKind::Deep.generate_base(tier.n, 3);
        let raw = base.heap_bytes();
        for kind in [
            MethodKind::Vamana,
            MethodKind::Elpis,
            MethodKind::Hnsw,
            MethodKind::Nsg,
            MethodKind::Ssg,
            MethodKind::SptagBkt,
        ] {
            let mut built = build_method(kind, base.clone(), 5);
            // Build-time structures only (flat graph + seed trees).
            let s0 = built.index.stats();
            // The serving configuration adds the CSR snapshot, the codec
            // store, and — when reordering is active — the id remap. One
            // row per ladder rung: re-quantizing replaces the codes in
            // place, so the delta between rows is exactly the code store.
            built.freeze();
            for spec in gass_core::CodecSpec::ALL {
                built.quantize(spec);
                let s = built.index.stats();
                let serving = (s.graph_bytes - s0.graph_bytes) + (s.aux_bytes - s0.aux_bytes);
                // Query-time scratch: visited stamps (4B/node) + beam buffer.
                let scratch = tier.n * 4 + 320 * std::mem::size_of::<(u64, bool)>();
                table.row(vec![
                    tier.label.to_string(),
                    kind.name(),
                    spec.resolve(base.dim()).to_string(),
                    fmt_bytes(raw + s.graph_bytes + s.aux_bytes + scratch),
                    fmt_bytes(s.graph_bytes),
                    fmt_bytes(s.aux_bytes),
                    fmt_bytes(serving),
                    fmt_bytes(scratch),
                ]);
            }
            eprintln!("done: {} {}", tier.label, kind.name());
        }
    }
    table.emit(&results_dir(), "fig10_query_memory").expect("write results");
}
