//! Figure 15: hard query workloads — Deep queries with 1%…10% Gaussian
//! noise, comparing the best ND-based methods (HNSW, NSG) against the
//! best DC-based methods (ELPIS, SPTAG-BKT).
//!
//! Paper shape: SPTAG-BKT wins at 1% noise; as noise grows its seed trees
//! misroute and it deteriorates while ELPIS takes the lead.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig15_hardness
//! ```

use gass_bench::{beam_sweep, num_queries, results_dir, tiers};
use gass_core::{QueryParams, TerminationPolicy};
use gass_data::{noisy_queries, DatasetKind};
use gass_eval::{evaluate_params, sweep, Table};
use gass_graphs::{build_method, MethodKind};

fn main() {
    let n = tiers()[0].n;
    let k = 10;
    let base = DatasetKind::Deep.generate_base(n, 151);
    let methods = [MethodKind::Hnsw, MethodKind::Nsg, MethodKind::Elpis, MethodKind::SptagBkt];
    let noise_levels = [0.01f32, 0.02, 0.05, 0.10];

    let mut table = Table::new(vec!["noise", "method", "L", "recall", "dist_calcs_per_query"]);
    let built: Vec<_> = methods
        .iter()
        .map(|&m| {
            let b = build_method(m, base.clone(), 151);
            eprintln!("built: {}", m.name());
            (m, b)
        })
        .collect();

    for &sigma2 in &noise_levels {
        let queries = noisy_queries(&base, num_queries(), sigma2, 997);
        let truth = gass_data::ground_truth(&base, &queries, k);
        for (m, b) in &built {
            for p in sweep(b.index.as_ref(), &queries, &truth, k, &beam_sweep(), 16) {
                table.row(vec![
                    format!("{:.0}%", sigma2 * 100.0),
                    m.name(),
                    p.beam_width.to_string(),
                    format!("{:.4}", p.recall),
                    (p.dist_calcs / queries.len() as u64).to_string(),
                ]);
            }
            eprintln!("done: {:.0}% {}", sigma2 * 100.0, m.name());
        }
        // Adaptive-termination rows (HNSW at the widest cap in the
        // sweep): per-query cost now tracks difficulty — at low noise
        // the policy retires early and spends far less than the fixed
        // beam; at high noise it keeps searching and converges to the
        // fixed-beam cost. The L column shows the cap it ran under.
        let cap = *beam_sweep().last().unwrap();
        let hnsw = &built[0].1;
        for (label, term) in [
            ("HNSW sat:8", TerminationPolicy::Saturation { patience: 8 }),
            ("HNSW dr:0.2", TerminationPolicy::DistRatio { eps: 0.2 }),
        ] {
            let params = QueryParams::new(k, cap).with_seed_count(16).with_term(term);
            let p = evaluate_params(hnsw.index.as_ref(), &queries, &truth, &params);
            table.row(vec![
                format!("{:.0}%", sigma2 * 100.0),
                label.to_string(),
                format!("<={cap}"),
                format!("{:.4}", p.recall),
                (p.dist_calcs / queries.len() as u64).to_string(),
            ]);
            eprintln!("done: {:.0}% {label}", sigma2 * 100.0);
        }
    }
    table.emit(&results_dir(), "fig15_hardness").expect("write results");
    println!(
        "Read as Fig. 15: at each noise level, compare recall vs cost. \
         Expect the DC methods (ELPIS, SPTAG-BKT) ahead at low noise and \
         ELPIS most robust as noise grows."
    );
}
